(* Scenario-campaign suite: the property-based chaos harness itself.

   Four contracts under test:
   - determinism: same seed, same budget => bit-identical campaign
     summaries and scenario outcomes (the CLI acceptance contract);
   - the harness is not blind: the sabotaged self-test scenario is
     caught by the invariant checks;
   - shrinking is sound: a shrunk trace still satisfies the oracle it
     was shrunk under, is never longer than its parent, and is a
     subsequence of it (qcheck over random traces);
   - the regression corpus replays green: every checked-in reproducer
     in [corpus/] was recorded against a since-fixed stack bug and
     must now pass.

   Plus the pool retirement regressions that ride along with the
   harness (idempotent retire, retire-vs-migration races).

   [AVA_CHAOS_SEED] re-seeds the random-trace properties (the CI
   campaign job sweeps a small seed matrix); every assertion holds for
   any seed. *)

module Pool = Ava_pool.Pool
module Server = Ava_remoting.Server
module Host = Ava_core.Host
module Campaign = Ava_campaign.Campaign
module Chaos_env = Ava_campaign.Chaos_env
module Op = Ava_campaign.Op
module Scenario = Ava_campaign.Scenario
module Shrink = Ava_campaign.Shrink
open Ava_sim

let chaos_seed = Chaos_env.seed64 ~default:42L

let verdict_str v = Format.asprintf "%a" Scenario.pp_verdict v

let same_invariant a b =
  match (a, b) with
  | Scenario.Violation (i, _), Scenario.Violation (j, _) -> i = j
  | Scenario.Hang _, Scenario.Hang _ -> true
  | Scenario.Pass, Scenario.Pass -> true
  | _ -> false

(* --- determinism ---------------------------------------------------------- *)

let campaign_fingerprint (s : Campaign.summary) =
  ( s.Campaign.cs_iterations,
    s.Campaign.cs_applied,
    s.Campaign.cs_twin_checks,
    List.map
      (fun v ->
        ( v.Campaign.vr_iteration,
          v.Campaign.vr_invariant,
          List.map Op.to_line v.Campaign.vr_trace ))
      s.Campaign.cs_violations )

let determinism_tests =
  [
    Alcotest.test_case "same seed, same campaign summary" `Quick (fun () ->
        let run () =
          Campaign.run ~log:ignore ~twin_every:4 ~max_ops:12 ~seed:chaos_seed
            ~budget:6 ()
        in
        let a = run () and b = run () in
        Alcotest.(check bool)
          "summaries identical" true
          (campaign_fingerprint a = campaign_fingerprint b));
    Alcotest.test_case "same trace, same scenario outcome" `Quick (fun () ->
        let rng = Rng.create chaos_seed in
        let config = Scenario.random_config rng in
        let trace =
          Op.gen rng
            {
              Op.g_devices = config.Scenario.sc_devices;
              g_max_tenants = config.Scenario.sc_max_tenants;
              g_length = 14;
            }
        in
        let a = Scenario.run config trace and b = Scenario.run config trace in
        Alcotest.(check string)
          "verdict" (verdict_str a.Scenario.oc_verdict)
          (verdict_str b.Scenario.oc_verdict);
        Alcotest.(check int)
          "final virtual time" a.Scenario.oc_final_ns b.Scenario.oc_final_ns;
        Alcotest.(check int)
          "executed calls" a.Scenario.oc_executed b.Scenario.oc_executed);
  ]

(* --- the harness catches a broken stack ----------------------------------- *)

let self_test_tests =
  [
    Alcotest.test_case "sabotaged scenario is caught" `Quick (fun () ->
        let outcome = Campaign.self_test ~seed:chaos_seed () in
        Alcotest.(check bool)
          "non-pass verdict" true
          (outcome.Scenario.oc_verdict <> Scenario.Pass));
    Alcotest.test_case "sabotage verdict is deterministic" `Quick (fun () ->
        let a = Campaign.self_test ~seed:chaos_seed ()
        and b = Campaign.self_test ~seed:chaos_seed () in
        Alcotest.(check string)
          "same verdict"
          (verdict_str a.Scenario.oc_verdict)
          (verdict_str b.Scenario.oc_verdict));
  ]

(* --- shrinking ------------------------------------------------------------ *)

(* Is [sub] a subsequence of [sup] (by op identity)? *)
let rec subsequence sub sup =
  match (sub, sup) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
      if x = y then subsequence xs ys else subsequence sub ys

let gen_trace seed len =
  let rng = Rng.create seed in
  Op.gen rng { Op.g_devices = 3; g_max_tenants = 3; g_length = len }

let shrink_tests =
  [
    (* The satellite property, end to end on the real interpreter: shrink
       a genuinely violating scenario (the sabotaged stack) under the
       same-invariant oracle; the result must still violate the same
       invariant and never be longer than its parent. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"shrunk trace violates the same invariant, never longer"
         ~count:4
         QCheck.(pair (int_range 2 7) small_int)
         (fun (len, salt) ->
           let config =
             {
               Scenario.default_config with
               Scenario.sc_seed =
                 Int64.add chaos_seed (Int64.of_int (salt + 1));
               sc_faults = "none";
             }
           in
           let parent = gen_trace config.Scenario.sc_seed len in
           let violates tr =
             (Scenario.run ~sabotage:true config tr).Scenario.oc_verdict
           in
           let parent_verdict = violates parent in
           QCheck.assume (parent_verdict <> Scenario.Pass);
           let shrunk =
             Shrink.minimize ~max_runs:30
               ~oracle:(fun tr -> same_invariant parent_verdict (violates tr))
               parent
           in
           same_invariant parent_verdict (violates shrunk)
           && List.length shrunk <= List.length parent));
    (* Structural soundness of the shrinker on a cheap content oracle:
       result satisfies the oracle, is minimal-ish, and is a true
       subsequence with only delays shrunk. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"shrinker output is an oracle-true subsequence"
         ~count:50
         QCheck.(pair small_int (int_range 4 24))
         (fun (salt, len) ->
           let parent =
             gen_trace (Int64.add chaos_seed (Int64.of_int salt)) len
           in
           let has_kind p tr = List.exists (fun o -> p o.Op.kind) tr in
           let oracle tr =
             has_kind (function Op.Admit -> true | _ -> false) tr
           in
           QCheck.assume (oracle parent);
           let shrunk = Shrink.minimize ~max_runs:100 ~oracle parent in
           let zeroed =
             List.map (fun o -> { o with Op.delay_ns = 0 }) shrunk
           in
           oracle shrunk
           && List.length shrunk <= List.length parent
           && subsequence zeroed
                (List.map (fun o -> { o with Op.delay_ns = 0 }) parent)));
    Alcotest.test_case "sabotage-only scenario shrinks to empty" `Quick
      (fun () ->
        let config =
          { Scenario.default_config with Scenario.sc_faults = "none" }
        in
        let parent = gen_trace chaos_seed 5 in
        let violates tr =
          (Scenario.run ~sabotage:true config tr).Scenario.oc_verdict
        in
        let parent_verdict = violates parent in
        Alcotest.(check bool)
          "parent violates" true
          (parent_verdict <> Scenario.Pass);
        let shrunk =
          Shrink.minimize ~max_runs:60
            ~oracle:(fun tr -> same_invariant parent_verdict (violates tr))
            parent
        in
        (* The violation comes from the sabotage, not the trace, so
           ddmin must strip every op. *)
        Alcotest.(check int) "empty reproducer" 0 (List.length shrunk));
  ]

(* --- corpus replay -------------------------------------------------------- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".trace")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let corpus_tests =
  [
    Alcotest.test_case "corpus is non-trivial" `Quick (fun () ->
        Alcotest.(check bool)
          "at least 3 reproducers" true
          (List.length (corpus_files ()) >= 3));
    Alcotest.test_case "every reproducer replays to pass" `Quick (fun () ->
        List.iter
          (fun file ->
            match Campaign.replay file with
            | Ok { Scenario.oc_verdict = Scenario.Pass; _ } -> ()
            | Ok o ->
                Alcotest.failf "%s replays to %s" file
                  (verdict_str o.Scenario.oc_verdict)
            | Error m -> Alcotest.failf "%s: corpus error: %s" file m)
          (corpus_files ()));
    Alcotest.test_case "corpus round-trips through save/load" `Quick (fun () ->
        List.iter
          (fun file ->
            match Campaign.load file with
            | Error m -> Alcotest.failf "%s: %s" file m
            | Ok (config, invariant, trace) ->
                let tmp = Filename.temp_file "ava-corpus" ".trace" in
                Campaign.save ~path:tmp ~config ~invariant ~detail:"roundtrip"
                  trace;
                let reloaded = Campaign.load tmp in
                Sys.remove tmp;
                (match reloaded with
                | Error m -> Alcotest.failf "%s reload: %s" file m
                | Ok (config', invariant', trace') ->
                    Alcotest.(check bool) "config" true (config = config');
                    Alcotest.(check string) "invariant" invariant invariant';
                    Alcotest.(check (list string))
                      "ops" (List.map Op.to_line trace)
                      (List.map Op.to_line trace')))
          (corpus_files ()));
  ]

(* --- pool retirement regressions ------------------------------------------ *)

let pool_host e = Host.create_cl_host ~devices:3 e
let the_pool (host : Host.cl_host) = Option.get host.Host.pool

let retire_tests =
  [
    Alcotest.test_case "retire then double retire" `Quick (fun () ->
        let e = Engine.create () in
        let host = pool_host e in
        let g = Host.add_cl_vm host ~name:"t0" in
        let vm_id = Ava_hv.Vm.id g.Host.g_vm in
        let pool = the_pool host in
        Alcotest.(check bool) "first retire" true (Pool.retire_vm pool ~vm_id);
        Alcotest.(check bool)
          "second retire refused" false
          (Pool.retire_vm pool ~vm_id);
        Alcotest.(check int) "one retirement counted" 1 (Pool.retires pool);
        Alcotest.(check bool)
          "no residency left" true
          (Pool.device_of pool ~vm_id = None));
    Alcotest.test_case "retire of unknown vm is refused" `Quick (fun () ->
        let e = Engine.create () in
        let pool = the_pool (pool_host e) in
        Alcotest.(check bool) "refused" false (Pool.retire_vm pool ~vm_id:99));
    Alcotest.test_case "retire refused while migration in flight" `Quick
      (fun () ->
        let e = Engine.create () in
        let host = pool_host e in
        let g = Host.add_cl_vm host ~name:"mover" in
        let vm_id = Ava_hv.Vm.id g.Host.g_vm in
        let pool = the_pool host in
        let src = Option.get (Pool.device_of pool ~vm_id) in
        let dest = (src + 1) mod 3 in
        let mid_drain = ref None in
        Engine.spawn e (fun () ->
            ignore (Pool.migrate_vm pool ~vm_id ~dest));
        Engine.spawn e (fun () ->
            (* Land inside the drain window (drain is 200us). *)
            Engine.delay (Time.us 50);
            mid_drain := Some (Pool.retire_vm pool ~vm_id));
        Engine.run e;
        Alcotest.(check (option bool))
          "retire during drain refused" (Some false) !mid_drain;
        Alcotest.(check int)
          "migration completed" dest
          (Option.get (Pool.device_of pool ~vm_id));
        Alcotest.(check int) "nothing aborted" 0 (Pool.aborted_migrations pool);
        (* After the migration settles the retire goes through. *)
        Alcotest.(check bool) "late retire" true (Pool.retire_vm pool ~vm_id));
    Alcotest.test_case "host retire releases iommu and recorder" `Quick
      (fun () ->
        let e = Engine.create () in
        let host = pool_host e in
        let g = Host.add_cl_vm host ~name:"t0" in
        let vm_id = Ava_hv.Vm.id g.Host.g_vm in
        Alcotest.(check bool) "retired" true (Host.retire_cl_vm host ~vm_id);
        Alcotest.(check bool)
          "iommu released" false
          (Hashtbl.mem host.Host.iommus vm_id);
        let pool = the_pool host in
        Alcotest.(check bool)
          "server entry gone" true
          (List.for_all
             (fun d -> Server.vm_ctx (Pool.server pool d) ~vm_id = None)
             (List.init (Pool.n_devices pool) Fun.id));
        Alcotest.(check bool)
          "second host retire refused" false
          (Host.retire_cl_vm host ~vm_id));
  ]

(* --- a small real campaign ------------------------------------------------ *)

let smoke_tests =
  [
    Alcotest.test_case "25-iteration campaign is green" `Slow (fun () ->
        let summary =
          Campaign.run ~log:ignore ~twin_every:8 ~max_ops:20 ~seed:chaos_seed
            ~budget:25 ()
        in
        Alcotest.(check int) "iterations" 25 summary.Campaign.cs_iterations;
        Alcotest.(check (list string))
          "no violations" []
          (List.map
             (fun v -> v.Campaign.vr_invariant)
             summary.Campaign.cs_violations));
  ]

(* --- the pressure ops (satellite: swap-pressure / quota-exhaustion) ------- *)

let pressure_op_tests =
  [
    Alcotest.test_case "new op kinds round-trip the corpus format" `Quick
      (fun () ->
        List.iter
          (fun op ->
            let line = Op.to_line op in
            match Op.of_line line with
            | Ok op' ->
                Alcotest.(check string)
                  (Printf.sprintf "round-trip %s" line)
                  line (Op.to_line op')
            | Error m -> Alcotest.failf "%s failed to parse: %s" line m)
          [
            { Op.delay_ns = 0; kind = Op.Swap_pressure (0, 3) };
            { Op.delay_ns = Time.us 5; kind = Op.Swap_pressure (2, 1) };
            { Op.delay_ns = 0; kind = Op.Quota_exhaust 1 };
            { Op.delay_ns = Time.ms 1; kind = Op.Quota_exhaust 0 };
            { Op.delay_ns = 0; kind = Op.Submit_nc (0, 4096) };
            { Op.delay_ns = Time.us 9; kind = Op.Submit_nc (3, 16384) };
            { Op.delay_ns = 0; kind = Op.Submit_qa (1, 64) };
            { Op.delay_ns = Time.ms 2; kind = Op.Submit_qa (0, 256) };
          ]);
    Alcotest.test_case "side-silo ops run green in a scenario" `Quick
      (fun () ->
        (* NC and QA work interleaved with pool-silo submissions: the
           side silos are fault-free, so any error there is a real
           isolation violation and the run must stay green. *)
        let config =
          {
            Scenario.default_config with
            Scenario.sc_seed = chaos_seed;
            sc_faults = "none";
          }
        in
        let trace =
          [
            { Op.delay_ns = 0; kind = Op.Admit };
            { Op.delay_ns = 0; kind = Op.Admit };
            { Op.delay_ns = 0; kind = Op.Submit_nc (0, 4096) };
            { Op.delay_ns = Time.us 20; kind = Op.Submit (1, Op.Vec_add 64) };
            { Op.delay_ns = 0; kind = Op.Submit_qa (1, 32) };
            { Op.delay_ns = Time.us 20; kind = Op.Submit_nc (1, 1024) };
            { Op.delay_ns = 0; kind = Op.Submit_qa (0, 8) };
          ]
        in
        let outcome = Scenario.run config trace in
        Alcotest.(check string)
          "verdict" "pass"
          (Format.asprintf "%a" Scenario.pp_verdict
             outcome.Scenario.oc_verdict);
        Alcotest.(check int) "all ops applied" 7 outcome.Scenario.oc_applied);
    Alcotest.test_case "generator emits the side-silo ops" `Quick (fun () ->
        let rng = Rng.create 11L in
        let trace =
          Op.gen rng { Op.g_devices = 3; g_max_tenants = 4; g_length = 400 }
        in
        let has p = List.exists (fun o -> p o.Op.kind) trace in
        Alcotest.(check bool) "nc submits generated" true
          (has (function Op.Submit_nc _ -> true | _ -> false));
        Alcotest.(check bool) "qa submits generated" true
          (has (function Op.Submit_qa _ -> true | _ -> false)));
    Alcotest.test_case "pressure ops run green in a scenario" `Quick
      (fun () ->
        (* Buffer churn against the transfer-cache layer plus a
           near-zero device-time quota: the stack must throttle and
           verify, never wedge or corrupt. *)
        let config =
          {
            Scenario.default_config with
            Scenario.sc_seed = chaos_seed;
            sc_faults = "none";
          }
        in
        let trace =
          [
            { Op.delay_ns = 0; kind = Op.Admit };
            { Op.delay_ns = 0; kind = Op.Submit (0, Op.Vec_add 64) };
            { Op.delay_ns = Time.us 50; kind = Op.Swap_pressure (0, 2) };
            { Op.delay_ns = 0; kind = Op.Quota_exhaust 0 };
            { Op.delay_ns = Time.us 50; kind = Op.Submit (0, Op.Vec_add 32) };
          ]
        in
        let outcome = Scenario.run config trace in
        Alcotest.(check string)
          "verdict" "pass"
          (Format.asprintf "%a" Scenario.pp_verdict
             outcome.Scenario.oc_verdict);
        Alcotest.(check int) "all ops applied" 5 outcome.Scenario.oc_applied);
    Alcotest.test_case "generator emits the pressure ops" `Quick (fun () ->
        let rng = Rng.create 7L in
        let trace =
          Op.gen rng { Op.g_devices = 3; g_max_tenants = 4; g_length = 400 }
        in
        let has p = List.exists (fun o -> p o.Op.kind) trace in
        Alcotest.(check bool) "swap-pressure generated" true
          (has (function Op.Swap_pressure _ -> true | _ -> false));
        Alcotest.(check bool) "quota-exhaustion generated" true
          (has (function Op.Quota_exhaust _ -> true | _ -> false)));
  ]

(* --- config-aware shrinking ------------------------------------------------ *)

let config_shrink_tests =
  [
    Alcotest.test_case "config shrinks to the simplest reproducer" `Quick
      (fun () ->
        (* Synthetic oracle over (int config, trace): reproduces while
           the config level is >= 2 and the trace still has a Submit.
           The shrinker must walk the config down to exactly 2 and keep
           the trace oracle-true and no longer than its parent. *)
        let parent = gen_trace chaos_seed 12 in
        let has_submit tr =
          List.exists
            (fun o -> match o.Op.kind with Op.Submit _ -> true | _ -> false)
            tr
        in
        QCheck.assume (has_submit parent);
        let oracle level tr = level >= 2 && has_submit tr in
        let shrink_config level = if level > 0 then [ level - 1 ] else [] in
        let level, shrunk =
          Shrink.minimize_with_config ~max_runs:200 ~shrink_config ~oracle 5
            parent
        in
        Alcotest.(check int) "config at its floor" 2 level;
        Alcotest.(check bool) "still reproduces" true (oracle level shrunk);
        Alcotest.(check bool)
          "no longer than parent" true
          (List.length shrunk <= List.length parent);
        Alcotest.(check bool)
          "subsequence of parent" true (subsequence shrunk parent));
    Alcotest.test_case "non-reproducing config candidates are not adopted"
      `Quick (fun () ->
        let parent = gen_trace chaos_seed 8 in
        let oracle level _ = level = 5 in
        let shrink_config level = if level > 0 then [ level - 1 ] else [] in
        let level, _ =
          Shrink.minimize_with_config ~max_runs:100 ~shrink_config ~oracle 5
            parent
        in
        Alcotest.(check int) "config unchanged" 5 level);
  ]

let () =
  Alcotest.run "ava_campaign"
    [
      ("determinism", determinism_tests);
      ("self-test", self_test_tests);
      ("shrinking", shrink_tests);
      ("pressure-ops", pressure_op_tests);
      ("config-shrink", config_shrink_tests);
      ("corpus", corpus_tests);
      ("retire", retire_tests);
      ("smoke", smoke_tests);
    ]
