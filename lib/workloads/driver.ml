(* Measurement driver: runs workloads on fresh simulated deployments and
   reports end-to-end virtual times and ratios. *)

module Transport = Ava_transport.Transport

open Ava_sim
open Ava_core

(* Run a SimCL program on a fresh engine/stack; returns end-to-end
   virtual nanoseconds.  [sync_only] deploys the unoptimized spec. *)
let time_cl ?(technique : Host.technique option) ?(sync_only = false)
    ?(batching = false) program =
  let e = Engine.create () in
  let finished = ref None in
  Engine.spawn e (fun () ->
      (match technique with
      | None ->
          let api, _ = Host.native_cl e in
          program api
      | Some tech ->
          let host = Host.create_cl_host ~sync_only e in
          let guest =
            Host.add_cl_vm host ~technique:tech ~batching ~name:"guest"
          in
          program guest.Host.g_api);
      finished := Some (Engine.now e));
  Engine.run e;
  match !finished with
  | Some t -> t
  | None -> failwith "workload stalled"

let time_nc ?(virtualized = false) program =
  let e = Engine.create () in
  let finished = ref None in
  Engine.spawn e (fun () ->
      (if virtualized then begin
         let host = Host.create_nc_host e in
         let guest = Host.add_nc_vm host ~name:"guest" in
         program guest.Host.ng_api
       end
       else begin
         let api, _ = Host.native_nc e in
         program api
       end);
      finished := Some (Engine.now e));
  Engine.run e;
  match !finished with
  | Some t -> t
  | None -> failwith "workload stalled"

(* Remoted-run profile: end-to-end time plus the wire/cache measurements
   the transfer-cache evaluation needs, and (with [~obs:true]) the
   per-phase latency attribution the observability evaluation needs. *)
type profile = {
  pr_ns : Time.t;  (** end-to-end virtual nanoseconds *)
  pr_wire_bytes : int;  (** bytes through the router, both directions *)
  pr_cache_hits : int;
  pr_cache_misses : int;
  pr_cache_saved_bytes : int;  (** payload bytes served from the store *)
  pr_cache_evictions : int;
  pr_device_lost : int;  (** calls the server failed with device-lost *)
  pr_tdr_resets : int;  (** watchdog-triggered device resets *)
  pr_quarantined : int;  (** calls rejected by open circuit breakers *)
  pr_phases : (string * Ava_obs.Hist.summary) list;
      (** per-phase latency summaries in pipeline order, phases with no
          samples omitted; empty when obs was off *)
  pr_call_latency : Ava_obs.Hist.summary option;
      (** end-to-end per-call latency; [None] when obs was off *)
}

let obs_phases = function
  | None -> []
  | Some o ->
      List.filter_map
        (fun (p, s) ->
          if s.Ava_obs.Hist.h_count = 0 then None
          else Some (Ava_obs.Obs.phase_name p, s))
        (Ava_obs.Obs.phase_summaries o)

(* Run a SimCL program remoted (AvA over the shm ring by default) with
   the given transfer-cache capacity, measuring wire bytes and content
   store counters alongside end-to-end time.  [devfaults]/[tdr]/[breaker]
   arm the fault-domain machinery for chaos profiling; [obs] arms
   per-call latency attribution (passive: end-to-end times are
   bit-identical either way); [sync_only] deploys the unoptimized
   all-sync spec. *)
let profile_cl ?(technique = Host.Ava Transport.Shm_ring)
    ?(transfer_cache = 0) ?(sync_only = false) ?(obs = false) ?sva ?doorbell
    ?devfaults ?tdr ?breaker program =
  let e = Engine.create () in
  let registry = if obs then Some (Ava_obs.Obs.create ()) else None in
  let result = ref None in
  Engine.spawn e (fun () ->
      let host =
        Host.create_cl_host ~transfer_cache ~sync_only ?sva ?doorbell
          ?devfaults ?tdr ?obs:registry e
      in
      let guest = Host.add_cl_vm host ~technique ?breaker ~name:"guest" in
      program guest.Host.g_api;
      let c = Ava_remoting.Server.cache_totals host.Host.server in
      result :=
        Some
          {
            pr_ns = Engine.now e;
            pr_wire_bytes = Ava_hv.Vm.bytes_transferred guest.Host.g_vm;
            pr_cache_hits = c.Ava_remoting.Server.cs_hits;
            pr_cache_misses = c.Ava_remoting.Server.cs_misses;
            pr_cache_saved_bytes = c.Ava_remoting.Server.cs_saved_bytes;
            pr_cache_evictions = c.Ava_remoting.Server.cs_evictions;
            pr_device_lost = Ava_remoting.Server.device_lost host.Host.server;
            pr_tdr_resets = Ava_remoting.Server.tdr_resets host.Host.server;
            pr_quarantined = Ava_remoting.Router.quarantined host.Host.router;
            pr_phases = obs_phases registry;
            pr_call_latency =
              Option.map Ava_obs.Obs.total_summary registry;
          });
  Engine.run e;
  match !result with
  | Some p -> p
  | None -> failwith "workload stalled"

(* MVNC counterpart of [profile_cl]. *)
let profile_nc ?(transfer_cache = 0) ?(obs = false) ?sva ?doorbell ?devfaults
    ?tdr ?breaker program =
  let e = Engine.create () in
  let registry = if obs then Some (Ava_obs.Obs.create ()) else None in
  let result = ref None in
  Engine.spawn e (fun () ->
      let host =
        Host.create_nc_host ~transfer_cache ?sva ?doorbell ?devfaults ?tdr
          ?obs:registry e
      in
      let guest = Host.add_nc_vm host ?breaker ~name:"guest" in
      program guest.Host.ng_api;
      let c = Ava_remoting.Server.cache_totals host.Host.nc_server in
      result :=
        Some
          {
            pr_ns = Engine.now e;
            pr_wire_bytes = Ava_hv.Vm.bytes_transferred guest.Host.ng_vm;
            pr_cache_hits = c.Ava_remoting.Server.cs_hits;
            pr_cache_misses = c.Ava_remoting.Server.cs_misses;
            pr_cache_saved_bytes = c.Ava_remoting.Server.cs_saved_bytes;
            pr_cache_evictions = c.Ava_remoting.Server.cs_evictions;
            pr_device_lost =
              Ava_remoting.Server.device_lost host.Host.nc_server;
            pr_tdr_resets = Ava_remoting.Server.tdr_resets host.Host.nc_server;
            pr_quarantined =
              Ava_remoting.Router.quarantined host.Host.nc_router;
            pr_phases = obs_phases registry;
            pr_call_latency =
              Option.map Ava_obs.Obs.total_summary registry;
          });
  Engine.run e;
  match !result with
  | Some p -> p
  | None -> failwith "workload stalled"

type row = {
  row_name : string;
  native_ns : Time.t;
  subject_ns : Time.t;
  relative : float;
}

let relative_runtime ~native ~subject =
  float_of_int subject /. float_of_int native

(* Figure 5 (OpenCL side): one row per Rodinia benchmark. *)
let fig5_opencl ?(technique = Host.Ava Transport.Shm_ring) () =
  List.map
    (fun (b : Rodinia.benchmark) ->
      let native = time_cl b.Rodinia.run in
      let subject = time_cl ~technique b.Rodinia.run in
      {
        row_name = b.Rodinia.name;
        native_ns = native;
        subject_ns = subject;
        relative = relative_runtime ~native ~subject;
      })
    Rodinia.all

(* Figure 5 (NCS side): Inception v3. *)
let fig5_ncs ?(inferences = 20) () =
  let native = time_nc (Inception.run ~inferences) in
  let subject = time_nc ~virtualized:true (Inception.run ~inferences) in
  {
    row_name = "inception";
    native_ns = native;
    subject_ns = subject;
    relative = relative_runtime ~native ~subject;
  }

(* §5 async ablation: per benchmark, native vs. annotated-async AvA vs.
   the unoptimized all-sync spec. *)
type ablation_row = {
  ab_name : string;
  ab_native_ns : Time.t;
  ab_async_ns : Time.t;
  ab_sync_ns : Time.t;
}

let async_ablation ?(technique = Host.Ava Transport.Shm_ring) () =
  List.map
    (fun (b : Rodinia.benchmark) ->
      let native = time_cl b.Rodinia.run in
      let as_async = time_cl ~technique b.Rodinia.run in
      let as_sync = time_cl ~technique ~sync_only:true b.Rodinia.run in
      {
        ab_name = b.Rodinia.name;
        ab_native_ns = native;
        ab_async_ns = as_async;
        ab_sync_ns = as_sync;
      })
    Rodinia.all

let pp_ablation_row ppf r =
  Fmt.pf ppf
    "%-12s native=%-10s async=%-10s (%.3fx) all-sync=%-10s (%.3fx) speedup=%.1f%%"
    r.ab_name
    (Time.to_string r.ab_native_ns)
    (Time.to_string r.ab_async_ns)
    (float_of_int r.ab_async_ns /. float_of_int r.ab_native_ns)
    (Time.to_string r.ab_sync_ns)
    (float_of_int r.ab_sync_ns /. float_of_int r.ab_native_ns)
    (100.0
    *. (float_of_int (r.ab_sync_ns - r.ab_async_ns)
       /. float_of_int r.ab_sync_ns))

let geomean rows = Stats.geomean (List.map (fun r -> r.relative) rows)
let mean rows = Stats.mean (List.map (fun r -> r.relative) rows)

let pp_row ppf r =
  Fmt.pf ppf "%-12s native=%-10s subject=%-10s relative=%.3f" r.row_name
    (Time.to_string r.native_ns)
    (Time.to_string r.subject_ns)
    r.relative
