(* Small helpers shared by the SimCL workloads. *)

open Ava_simcl.Types

exception Api_failure of string

let ok = function
  | Ok v -> v
  | Error e -> raise (Api_failure (error_to_string e))

type session = {
  cl : (module Ava_simcl.Api.S);
  device : device_id;
  context : context;
  queue : command_queue;
}

let open_session ?(profiling = false) (module CL : Ava_simcl.Api.S) =
  let platform = List.hd (ok (CL.clGetPlatformIDs ())) in
  let device = List.hd (ok (CL.clGetDeviceIDs platform Device_gpu)) in
  let context = ok (CL.clCreateContext [ device ]) in
  let queue = ok (CL.clCreateCommandQueue context device ~profiling) in
  { cl = (module CL); device; context; queue }

let close_session s =
  let module CL = (val s.cl) in
  ok (CL.clReleaseCommandQueue s.queue);
  ok (CL.clReleaseContext s.context)

(* Build a program of synthetic kernels: [(name, flops_per_item,
   bytes_per_item); ...], returning the kernel handles in order. *)
let build_kernels s decls =
  let module CL = (val s.cl) in
  let source =
    String.concat "; "
      (List.map
         (fun (name, flops, bytes) ->
           Printf.sprintf "synthetic %s flops=%g bytes=%g" name flops bytes)
         decls)
  in
  let program = ok (CL.clCreateProgramWithSource s.context ~source) in
  ok (CL.clBuildProgram program ~options:"");
  List.map
    (fun (name, _, _) -> ok (CL.clCreateKernel program ~name))
    decls

let buffer s size =
  let module CL = (val s.cl) in
  ok (CL.clCreateBuffer s.context ~size)

let write ?(blocking = false) s mem data =
  let module CL = (val s.cl) in
  ignore
    (ok
       (CL.clEnqueueWriteBuffer s.queue mem ~blocking ~offset:0 ~src:data
          ~wait_list:[] ~want_event:false))

let read s mem ~size =
  let module CL = (val s.cl) in
  let data, _ =
    ok
      (CL.clEnqueueReadBuffer s.queue mem ~blocking:true ~offset:0 ~size
         ~wait_list:[] ~want_event:false)
  in
  data

let set_arg s k index arg =
  let module CL = (val s.cl) in
  ok (CL.clSetKernelArg k ~index arg)

let launch s k ~global ~local =
  let module CL = (val s.cl) in
  ignore
    (ok
       (CL.clEnqueueNDRangeKernel s.queue k ~global_work_size:global
          ~local_work_size:local ~wait_list:[] ~want_event:false))

let finish s =
  let module CL = (val s.cl) in
  ok (CL.clFinish s.queue)
