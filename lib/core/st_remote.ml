(* The AvA-generated guest library for SimST.

   The stream API is where asynchronous forwarding earns its keep: the
   plan marks enqueue-shaped calls [async] and the ordering key keeps
   per-stream order on the wire, so the stub returns before the device
   has seen the work.  [sync_on] calls (stream/event synchronize, batch
   collect) ride the normal synchronous path — the server withholds the
   reply until the native call's completion point passes. *)

module Stub = Ava_remoting.Stub
module Wire = Ava_remoting.Wire
module Message = Ava_remoting.Message

open Ava_simst.Types
open Codec

type t = { stub : Stub.t }

(* Finish a synchronous invocation: deferred async errors outrank the
   current call's (successful) result. *)
let finish stub result parse =
  match result with
  | Error _ -> Error St_fail
  | Ok None -> assert false
  | Ok (Some (reply : Message.reply)) -> (
      match Stub.take_deferred_error stub with
      | Some (_fn, code) -> Error (status_of_code code)
      | None ->
          if reply.Message.reply_status <> 0 then
            Error (status_of_code reply.Message.reply_status)
          else parse reply)

let sync stub ~fn ~env ~args parse =
  finish stub (Stub.invoke ~force_sync:true stub ~fn ~env ~args) parse

(* Fire an asynchronously forwarded call; per the paper it returns
   success immediately and failures surface on the next sync call. *)
let fire stub ~fn ~env ~args =
  match Stub.invoke stub ~fn ~env ~args with
  | Error _ -> Error St_fail
  | Ok None -> Ok ()
  | Ok (Some (reply : Message.reply)) ->
      (* The plan judged this invocation synchronous after all. *)
      if reply.Message.reply_status <> 0 then
        Error (status_of_code reply.Message.reply_status)
      else Ok ()

let out_exn (reply : Message.reply) n =
  match List.nth_opt reply.Message.reply_outs n with
  | Some v -> v
  | None -> raise Bad_args

let ret_handle (reply : Message.reply) =
  match reply.Message.reply_ret with
  | Wire.Handle v -> Ok (Int64.to_int v)
  | _ -> Error St_fail

let create stub =
  let t = { stub } in
  let module M = struct
    let stDeviceGetCount () =
      sync t.stub ~fn:"stDeviceGetCount" ~env:[] ~args:[ u ] (fun reply ->
          Ok (to_i (out_exn reply 0)))

    let stStreamCreate () =
      sync t.stub ~fn:"stStreamCreate" ~env:[] ~args:[ u ] ret_handle

    let stStreamDestroy s =
      sync t.stub ~fn:"stStreamDestroy" ~env:[] ~args:[ h s ] (fun _ ->
          Ok ())

    let stStreamSynchronize s =
      sync t.stub ~fn:"stStreamSynchronize" ~env:[] ~args:[ h s ] (fun _ ->
          Ok ())

    let stEventCreate () =
      sync t.stub ~fn:"stEventCreate" ~env:[] ~args:[ u ] ret_handle

    let stEventDestroy ev =
      sync t.stub ~fn:"stEventDestroy" ~env:[] ~args:[ h ev ] (fun _ ->
          Ok ())

    let stEventRecord ev s =
      fire t.stub ~fn:"stEventRecord" ~env:[] ~args:[ h ev; h s ]

    let stEventSynchronize ev =
      sync t.stub ~fn:"stEventSynchronize" ~env:[] ~args:[ h ev ] (fun _ ->
          Ok ())

    let stStreamWaitEvent s ev =
      fire t.stub ~fn:"stStreamWaitEvent" ~env:[] ~args:[ h s; h ev ]

    let stMemAlloc ~size =
      sync t.stub ~fn:"stMemAlloc"
        ~env:[ ("size", size) ]
        ~args:[ u; i size ] ret_handle

    let stMemFree m =
      sync t.stub ~fn:"stMemFree" ~env:[] ~args:[ h m ] (fun _ -> Ok ())

    (* The source buffer travels as a copy, as a generated stub must:
       the guest may reuse it the moment the call returns. *)
    let stMemcpyHtoDAsync dst ~src s =
      let size = Bytes.length src in
      fire t.stub ~fn:"stMemcpyHtoDAsync"
        ~env:[ ("size", size) ]
        ~args:[ h dst; b (Bytes.copy src); i size; h s ]

    let stMemcpyDtoH ~size src =
      sync t.stub ~fn:"stMemcpyDtoH"
        ~env:[ ("size", size) ]
        ~args:[ u; i size; h src ]
        (fun reply -> Ok (to_b (out_exn reply 0)))

    let stLaunchKernel s ~name ~a ~b:bm ~out ~n =
      let name_size = String.length name in
      fire t.stub ~fn:"stLaunchKernel"
        ~env:[ ("name_size", name_size); ("n", n) ]
        ~args:
          [
            h s; b (Bytes.of_string name); i name_size; h a; h bm; h out; i n;
          ]

    let stBatchSubmit s ~batch ~item_size =
      let batch_size = Bytes.length batch in
      sync t.stub ~fn:"stBatchSubmit"
        ~env:[ ("batch_size", batch_size); ("item_size", item_size) ]
        ~args:[ h s; b (Bytes.copy batch); i batch_size; i item_size; u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    let stBatchCollect s ~ticket ~size =
      sync t.stub ~fn:"stBatchCollect"
        ~env:[ ("scores_size", size) ]
        ~args:[ h s; i ticket; u; i size ]
        (fun reply -> Ok (to_b (out_exn reply 0)))
  end in
  ((module M : Ava_simst.Api.S), t)

let stub t = t.stub
