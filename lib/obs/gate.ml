(* Perf-gate comparison logic: flatten bench JSON into named numeric
   metrics, compare the gated subset against a baseline with a
   tolerance band, and render the verdict as a markdown table.  Lives
   in the library (not bin/) so the comparison rules are unit-tested
   with everything else. *)

(* {1 Flattening} *)

(* Array elements are named by their "name"/"phase"/"workload"/
   "capability" member when one exists, so metric paths stay stable as
   lists are reordered or extended; anonymous elements fall back to
   their index. *)
let element_label v i =
  let tag key =
    match Json.member key v with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let rec first = function
    | [] -> string_of_int i
    | key :: rest -> (
        match tag key with Some s -> s | None -> first rest)
  in
  first [ "name"; "phase"; "workload"; "capability" ]

let flatten json =
  let out = ref [] in
  let rec walk path v =
    match v with
    | Json.Int _ | Json.Float _ ->
        let n = Option.get (Json.to_number v) in
        out := (String.concat "/" (List.rev path), n) :: !out
    | Json.Obj fields -> List.iter (fun (k, v) -> walk (k :: path) v) fields
    | Json.List items ->
        List.iteri (fun i v -> walk (element_label v i :: path) v) items
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  walk [] json;
  List.rev !out

(* {1 Gated metrics} *)

(* Only lower-is-better metrics are gated: the end-to-end ratios the
   paper's Fig. 5 band is stated in, the per-phase p50/p95, and the
   simcore self-benchmark's per-event cost and allocation rate.
   Counters, byte totals, events/s etc. are reported but never fail
   the gate (events/s is higher-is-better; its inverse ns_per_event is
   the gated form). *)
let gated_suffixes =
  [
    "relative";
    "async_rel";
    "sync_rel";
    "mean_relative";
    "max_relative";
    "p50_ns";
    "p95_ns";
    "p99_ns";
    "transport_marshal_p50_ns";
    "ns_per_event";
    "alloc_bytes_per_event";
  ]

let is_gated path =
  let leaf =
    match String.rindex_opt path '/' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  List.mem leaf gated_suffixes

(* Sub-microsecond phases (and the simcore per-event wall cost, which
   sits around 100 ns) can double from scheduling accidents without
   meaning anything; absolute slack keeps the gate quiet on them. *)
let ns_noise_floor = 100.0

let is_ns_metric path =
  let ends_with suffix =
    let n = String.length path and m = String.length suffix in
    n >= m && String.sub path (n - m) m = suffix
  in
  ends_with "_ns" || ends_with "ns_per_event"

type status = Ok | Regressed | New_metric | Missing_metric

type row = {
  r_path : string;
  r_base : float option;
  r_cur : float option;
  r_status : status;
}

type verdict = {
  v_rows : row list;
  v_regressions : int;
  v_compared : int;
}

let compare_metrics ~tolerance_pct ~baseline ~current =
  let base = flatten baseline in
  let cur = flatten current in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base;
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace cur_tbl k v) cur;
  let regressions = ref 0 in
  let compared = ref 0 in
  let rows_cur =
    List.filter_map
      (fun (path, c) ->
        if not (is_gated path) then None
        else
          match Hashtbl.find_opt base_tbl path with
          | None ->
              Some { r_path = path; r_base = None; r_cur = Some c; r_status = New_metric }
          | Some b ->
              incr compared;
              let slack = if is_ns_metric path then ns_noise_floor else 0.0 in
              let limit = (b *. (1.0 +. (tolerance_pct /. 100.0))) +. slack in
              let status =
                if b > 0.0 && c > limit then begin
                  incr regressions;
                  Regressed
                end
                else Ok
              in
              Some { r_path = path; r_base = Some b; r_cur = Some c; r_status = status })
      cur
  in
  let rows_missing =
    List.filter_map
      (fun (path, b) ->
        if is_gated path && not (Hashtbl.mem cur_tbl path) then
          Some { r_path = path; r_base = Some b; r_cur = None; r_status = Missing_metric }
        else None)
      base
  in
  {
    v_rows = rows_cur @ rows_missing;
    v_regressions = !regressions;
    v_compared = !compared;
  }

let passed v = v.v_regressions = 0

(* {1 Markdown rendering} *)

let fmt_num = function
  | None -> "—"
  | Some f ->
      if Float.is_integer f && Float.abs f < 1e12 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.4g" f

let fmt_delta base cur =
  match (base, cur) with
  | Some b, Some c when b > 0.0 -> Printf.sprintf "%+.1f%%" ((c /. b -. 1.0) *. 100.0)
  | _ -> "—"

let status_cell = function
  | Ok -> "ok"
  | Regressed -> "**REGRESSED**"
  | New_metric -> "new"
  | Missing_metric -> "missing"

let to_markdown ~tolerance_pct v =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "## Perf gate (%s, tolerance %.0f%%)\n\n"
       (if passed v then "PASS" else "FAIL")
       tolerance_pct);
  Buffer.add_string b
    (Printf.sprintf "%d metrics compared, %d regression%s.\n\n" v.v_compared
       v.v_regressions
       (if v.v_regressions = 1 then "" else "s"));
  Buffer.add_string b "| metric | baseline | current | delta | status |\n";
  Buffer.add_string b "|---|---:|---:|---:|---|\n";
  (* Regressions first so a failing run surfaces the cause at the top;
     then everything else in path order. *)
  let ordered =
    List.stable_sort
      (fun a b ->
        match (a.r_status, b.r_status) with
        | Regressed, Regressed -> String.compare a.r_path b.r_path
        | Regressed, _ -> -1
        | _, Regressed -> 1
        | _ -> String.compare a.r_path b.r_path)
      v.v_rows
  in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s | %s | %s |\n" r.r_path
           (fmt_num r.r_base) (fmt_num r.r_cur)
           (fmt_delta r.r_base r.r_cur)
           (status_cell r.r_status)))
    ordered;
  Buffer.contents b

(* {1 Self-test support} *)

(* Inflate every gated metric by [pct] — used by the CI self-test to
   prove the gate actually fails on a regressed result. *)
let inflate ~pct json =
  let factor = 1.0 +. (pct /. 100.0) in
  let rec walk path v =
    match v with
    | Json.Obj fields ->
        Json.Obj (List.map (fun (k, v) -> (k, walk (k :: path) v)) fields)
    | Json.List items ->
        Json.List (List.mapi (fun i v -> walk (element_label v i :: path) v) items)
    | Json.Int n when is_gated (String.concat "/" (List.rev path)) ->
        Json.Float ((float_of_int n *. factor) +. (2.0 *. ns_noise_floor))
    | Json.Float f when is_gated (String.concat "/" (List.rev path)) ->
        Json.Float ((f *. factor) +. (2.0 *. ns_noise_floor))
    | v -> v
  in
  walk [] json
