(* The invocation router: AvA's hypervisor-level interposition point.

   Every forwarded call crosses the router, which (a) *verifies* it — the
   function must exist in the spec and carry the right argument count —
   (b) enforces per-VM policy: token-bucket rate limits and windowed
   device-time quotas, and (c) schedules competing VMs with weighted fair
   queueing on the spec's resource estimates (§4.3).  Replies flow back
   through per-VM egress processes with accounting.

   This is exactly what vCUDA-style user-space RPC gives up: remove the
   router (connect guest directly to server) and interposition is gone. *)

module Plan = Ava_codegen.Plan
module Transport = Ava_transport.Transport
module Obs = Ava_obs.Obs

open Ava_sim
open Ava_hv

let trace_category = "router"

(* One message forwarded to the server whose replies are still owed;
   requeued wholesale if the server restarts (already-executed seqs are
   deduplicated there). *)
type in_flight = {
  if_data : bytes;
  if_cost : float;
  mutable if_seqs : int list;  (** seqs still awaiting replies *)
}

type vm_conn = {
  rc_vm : Vm.t;
  mutable rc_owner : t;
      (** router currently owning this flow.  Normally the router that
          attached it; a cross-host migration re-points it (see
          {!transfer_flow}), and the ingress process re-reads it each
          iteration so the guest's live connection follows the VM. *)
  guest_side : Transport.endpoint;  (** router's endpoint facing the guest *)
  mutable server_side : Transport.endpoint;
      (** router's endpoint facing the VM's current backend server *)
  mutable rc_backend : int;  (** backend currently steering this VM *)
  mutable contig_seq : int;
      (** highest seq such that every seq [<= contig_seq] has been seen
          at ingress; -1 until the first call.  Two campaign-found
          pitfalls shape this field.  Stub seqs start at 0, so
          initializing to 0 would make [next_seq] report 1 for a VM
          that has never sent traffic — migrating it then seeds the
          destination's in-order cursor one past the guest's first real
          seq and its first call parks forever.  And it must be the
          {e contiguous} high-water mark, not the max: transport delay
          can deliver seq [n+1] before seq [n], and a migration seeded
          off the max would start the destination past a call that is
          still on the wire — when it lands it reads as a pre-cursor
          duplicate with no reply-log entry, unanswerable forever. *)
  seen_ahead : (int, unit) Hashtbl.t;
      (** seqs observed at ingress beyond [contig_seq] (out-of-order
          arrivals), absorbed into it as the gaps fill *)
  mutable pending_seqs : int list;  (** seqs queued in the WFQ, unordered *)
  mutable policing_seqs : int list;
      (** seqs past [mark_in] but still inside admission/policing —
          the ingress process can stall there for whole quota windows
          ([Policy.Quota.charge] sleeps until a window with room), and
          during the stall the call is in no other ledger: [mark_in]
          already advanced [contig_seq] over it, yet it reaches
          [pending_seqs] only when the charge completes.  [next_seq]
          must count these as outstanding, else a migration racing the
          stall seeds the destination cursor past the call and it (plus
          every retransmit, each re-stalled by the same quota) parks in
          the in-flight ledger forever.  (Campaign-found: quota
          clamped to a near-zero budget, then a live migrate; see
          test/corpus/shrunk-seq-ledger-quota-stall-migrate.trace.) *)
  mutable skipped_seqs : int list;
      (** seqs policed away whose Skip notice went to the current backend *)
  rejected_status : (int, int) Hashtbl.t;
      (** rejection status by seq, for every call policed away or
          quarantined.  A retransmit of such a seq must get the same
          rejection replayed, never be forwarded: the backend already
          consumed the Skip and advanced past the seq, so a forwarded
          retransmit would read there as a pre-cursor duplicate with no
          reply-log entry — unanswerable, parked in the in-flight
          ledger forever.  (Campaign-found: a breaker half-open probe
          forwarding a retransmit of a seq quarantined moments earlier;
          see test/corpus/shrunk-seq-ledger-quarantine-retransmit.trace.) *)
  mutable bucket : Policy.Token_bucket.t option;
  mutable quota : Policy.Quota.t option;
  mutable in_flight : in_flight list;  (** newest first *)
  mutable breaker : Policy.Breaker.t option;
  mutable fault_statuses : int list;
      (** reply statuses fed to the breaker as failures *)
  mutable fault_replies : int;  (** fault-status replies seen *)
}

(* One dispatch lane: each backend server gets its own WFQ and its own
   pacing dispatcher, so a pool of devices schedules independently
   (lifting the single-popper limit of [Policy.Wfq.pop]). *)
and backend = {
  bs_id : int;
  bs_wfq : (vm_conn * float * bytes * int list) Policy.Wfq.t;
  mutable bs_started : bool;  (** dispatcher process spawned *)
}

and t = {
  engine : Engine.t;
  virt : Ava_device.Timing.virt;
  plan : Plan.t;
  mutable backends : (int * backend) list;
  mutable conns : (int * vm_conn) list;
  mutable forwarded : int;
  mutable rejected : int;
  mutable requeued : int;
  mutable quarantined : int;
      (** calls rejected at admission by an open breaker *)
  mutable resteered : int;  (** VMs live-moved between backends *)
  mutable paced_ns : Time.t;
  trace : Trace.t option;
  obs : Obs.t option;
}

(* Conservative conversion from abstract cost units (work items / bytes)
   to estimated device nanoseconds: deliberately an under-estimate so
   pacing never outruns the real device. *)
let pacing_ns_of_cost cost =
  Stdlib.min (Time.us 500) (int_of_float (cost *. 0.02))

let make_backend id = { bs_id = id; bs_wfq = Policy.Wfq.create (); bs_started = false }

let create ?trace ?obs engine ~virt ~plan =
  {
    engine;
    virt;
    plan;
    backends = [ (0, make_backend 0) ];
    conns = [];
    forwarded = 0;
    rejected = 0;
    requeued = 0;
    quarantined = 0;
    resteered = 0;
    paced_ns = 0;
    trace;
    obs;
  }

let backend_exn t id =
  match List.assoc_opt id t.backends with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Router: unknown backend %d" id)

let add_backend t ~id =
  if List.mem_assoc id t.backends then
    invalid_arg (Printf.sprintf "Router.add_backend: backend %d exists" id);
  t.backends <- t.backends @ [ (id, make_backend id) ]

let record_trace_cat t category fmt =
  match t.trace with
  | Some tr when Trace.is_enabled tr ->
      Trace.record tr ~at:(Engine.now t.engine) ~category fmt
  | _ -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let record_trace t fmt = record_trace_cat t trace_category fmt

let forwarded t = t.forwarded
let rejected t = t.rejected
let requeued t = t.requeued
let quarantined t = t.quarantined
let resteered t = t.resteered

let find_conn t vm_id = List.assoc_opt vm_id t.conns

(* Verification: the call must name a spec'd function and carry exactly
   the marshalled argument count the plan prescribes. *)
let verify t (c : Message.call) =
  match Plan.find t.plan c.Message.call_fn with
  | None -> Error Server.status_unknown_function
  | Some plan ->
      if List.length c.Message.call_args <> List.length plan.Plan.cp_params
      then Error Server.status_bad_arguments
      else Ok plan

(* Scalar environment for the plan's cost expressions, recovered from the
   marshalled arguments. *)
let env_of_call (plan : Plan.call_plan) (c : Message.call) =
  List.fold_left2
    (fun env (name, action) v ->
      match (action, Wire.to_int v) with
      | Plan.Pass_scalar, Some n -> (name, n) :: env
      | _ -> env)
    [] plan.Plan.cp_params c.Message.call_args

let reject_call conn (c : Message.call) status =
  Hashtbl.replace conn.rejected_status c.Message.call_seq status;
  let reply =
    Message.Reply
      {
        reply_seq = c.Message.call_seq;
        reply_status = status;
        reply_ret = Wire.Unit;
        reply_outs = [];
      }
  in
  Transport.send conn.guest_side (Message.encode reply)

(* Tell the server the named seqs were policed away and will never
   arrive, so its in-order execution can advance past them.  Skips are
   remembered so a later re-steer can forward the still-relevant ones
   to the new backend (whose skip set starts empty). *)
let send_skip conn seqs =
  if seqs <> [] then begin
    conn.skipped_seqs <- seqs @ conn.skipped_seqs;
    Transport.send conn.server_side
      (Message.encode
         (Message.Skip { skip_vm = Vm.id conn.rc_vm; skip_seqs = seqs }))
  end

(* A reply flowed back: release its seq from the in-flight ledger. *)
let mark_replied conn seq =
  conn.in_flight <-
    List.filter
      (fun m ->
        if List.mem seq m.if_seqs then
          m.if_seqs <- List.filter (fun s -> s <> seq) m.if_seqs;
        m.if_seqs <> [])
      conn.in_flight

let dispatcher_name b =
  if b.bs_id = 0 then "ava-router-dispatch"
  else Printf.sprintf "ava-router-dispatch-b%d" b.bs_id

let start_dispatcher t b =
  if not b.bs_started then begin
    b.bs_started <- true;
    Engine.spawn t.engine ~name:(dispatcher_name b) (fun () ->
        let rec loop () =
          let flow_id, (conn, cost, data, seqs) = Policy.Wfq.pop b.bs_wfq in
          t.forwarded <- t.forwarded + 1;
          if seqs <> [] then begin
            conn.pending_seqs <-
              List.filter (fun s -> not (List.mem s seqs)) conn.pending_seqs;
            conn.in_flight <-
              { if_data = data; if_cost = cost; if_seqs = seqs }
              :: conn.in_flight
          end;
          (match t.obs with
          | Some o ->
              let now = Engine.now t.engine in
              List.iter
                (fun seq ->
                  Obs.mark o ~vm:(Vm.id conn.rc_vm) ~seq Obs.M_dispatched
                    ~at:now)
                seqs
          | None -> ());
          Transport.send conn.server_side data;
          (* Schedule at call granularity (§4.3): pace dispatch by the
             call's estimated device time.  The estimate is a strict
             under-estimate of real execution, so an uncontended guest is
             never slowed; under contention the pacing makes dequeue
             order — and therefore device shares — follow WFQ weights. *)
          ignore flow_id;
          let pace = pacing_ns_of_cost cost in
          t.paced_ns <- t.paced_ns + pace;
          Engine.delay pace;
          loop ()
        in
        loop ())
  end

(* Egress: server -> guest for one (conn, endpoint) pair, with byte
   accounting and in-flight bookkeeping (a reply releases its seq from
   the requeue ledger).  Factored out of [attach_vm] because a re-steer
   spawns a fresh egress on the new backend's endpoint; the old one
   keeps draining residual replies from the previous server, which
   [mark_replied] dedups harmlessly. *)
let spawn_egress t conn ep =
  let vm = conn.rc_vm in
  Engine.spawn t.engine ~name:(Printf.sprintf "ava-router-out-vm%d" (Vm.id vm))
    (fun () ->
      let rec loop () =
        let data = Transport.recv ep in
        Vm.charge_bytes vm (Bytes.length data);
        (match Message.decode data with
        | Ok (Message.Reply r) ->
            mark_replied conn r.Message.reply_seq;
            (* Feed the reply into this VM's error budget: fault
               statuses count against it; any other reply proves the
               service path healthy. *)
            let faulty =
              List.mem r.Message.reply_status conn.fault_statuses
            in
            if faulty then conn.fault_replies <- conn.fault_replies + 1;
            (match conn.breaker with
            | Some b ->
                if faulty then begin
                  let was = Policy.Breaker.state b in
                  Policy.Breaker.record_failure b;
                  if Policy.Breaker.state b = Policy.Breaker.Open then
                    record_trace_cat t "breaker"
                      "vm%d breaker %s status=%d" (Vm.id vm)
                      (match was with
                      | Policy.Breaker.Open -> "open"
                      | _ -> "tripped open")
                      r.Message.reply_status
                end
                else Policy.Breaker.record_success b
            | None -> ())
        | _ -> ());
        Transport.send conn.guest_side data;
        loop ()
      in
      loop ())

(* Attach one VM.  [guest_side]/[server_side] are the router's ends of
   the guest and server transports.  [backend] names the dispatch lane
   (pool device) the VM starts on.  Policy knobs:
   - [rate_per_s]/[burst]: API-call rate limit,
   - [weight]: WFQ share,
   - [quota_cost]/[quota_window]: device-time budget per window. *)
let attach_vm ?rate_per_s ?(burst = 32.0) ?(weight = 1.0) ?quota_cost
    ?(quota_window = Time.ms 100) ?breaker
    ?(breaker_statuses = [ Server.status_device_lost ]) ?(backend = 0) t vm
    ~guest_side ~server_side =
  let conn =
    {
      rc_vm = vm;
      rc_owner = t;
      guest_side;
      server_side;
      rc_backend = backend;
      contig_seq = -1;
      seen_ahead = Hashtbl.create 16;
      pending_seqs = [];
      policing_seqs = [];
      skipped_seqs = [];
      rejected_status = Hashtbl.create 16;
      bucket =
        Option.map
          (fun r -> Policy.Token_bucket.create t.engine ~rate_per_s:r ~burst)
          rate_per_s;
      quota =
        Option.map
          (fun budget ->
            Policy.Quota.create t.engine ~window_ns:quota_window ~budget)
          quota_cost;
      in_flight = [];
      breaker = Option.map (Policy.Breaker.create t.engine) breaker;
      fault_statuses = breaker_statuses;
      fault_replies = 0;
    }
  in
  t.conns <- (Vm.id vm, conn) :: t.conns;
  let b = backend_exn t backend in
  Policy.Wfq.add_flow b.bs_wfq ~flow_id:(Vm.id vm) ~weight;
  start_dispatcher t b;
  (* Ingress: guest -> verify -> police -> WFQ. *)
  Engine.spawn t.engine ~name:(Printf.sprintf "ava-router-in-vm%d" (Vm.id vm))
    (fun () ->
      let rec loop () =
        let data = Transport.recv guest_side in
        (* Re-read the owning router each iteration: a cross-host
           migration re-points [rc_owner], and from then on this VM's
           ingress verifies, polices and enqueues against the
           destination router without respawning the process. *)
        let t = conn.rc_owner in
        Engine.delay t.virt.Ava_device.Timing.router_check_ns;
        (* Ingress stamp: ends the guest->router transport phase for
           every call in the message (rejected ones included — their
           spans then close on the rejection reply).  Also advances the
           high-water seq used by [next_seq] after a re-steer. *)
        let mark_in (c : Message.call) =
          let seq = c.Message.call_seq in
          if seq > conn.contig_seq then Hashtbl.replace conn.seen_ahead seq ();
          while Hashtbl.mem conn.seen_ahead (conn.contig_seq + 1) do
            Hashtbl.remove conn.seen_ahead (conn.contig_seq + 1);
            conn.contig_seq <- conn.contig_seq + 1
          done;
          match t.obs with
          | Some o ->
              Obs.mark o ~vm:(Vm.id vm) ~seq:c.Message.call_seq
                Obs.M_router_in ~at:(Engine.now t.engine)
          | None -> ()
        in
        (* Push into whichever backend currently steers this VM. *)
        let push_wfq ~cost data seqs =
          (* Re-read the owner: a policing stall above can span a
             cross-router transfer, and the push must land in the
             backend table of whichever router owns the VM now. *)
          let b = backend_exn conn.rc_owner conn.rc_backend in
          conn.pending_seqs <- seqs @ conn.pending_seqs;
          Policy.Wfq.push b.bs_wfq ~flow_id:(Vm.id vm) ~cost
            (conn, cost, data, seqs)
        in
        (* Verify and cost one call; policing happens per contained
           call so batching cannot dodge rate limits or quotas. *)
        let police (c : Message.call) =
          match verify t c with
          | Error status ->
              t.rejected <- t.rejected + 1;
              reject_call conn c status;
              None
          | Ok plan ->
              Vm.charge_call vm;
              record_trace t "vm%d %s seq=%d" (Vm.id vm)
                c.Message.call_fn c.Message.call_seq;
              let env = env_of_call plan c in
              (match conn.bucket with
              | Some b -> Policy.Token_bucket.take b 1.0
              | None -> ());
              let cost =
                match Plan.resource_estimate plan ~env "device_time" with
                | Some c -> float_of_int (Stdlib.max 1 c)
                | None -> (
                    match Plan.resource_estimate plan ~env "bus_bytes" with
                    | Some b -> float_of_int (Stdlib.max 1 (b / 64))
                    | None -> 1.0)
              in
              Vm.charge_device_time vm (int_of_float cost);
              (match conn.quota with
              | Some q -> Policy.Quota.charge q cost
              | None -> ());
              Some cost
        in
        (* Circuit-breaker admission: while this VM is quarantined its
           calls are rejected outright with a distinct status — they
           never reach the WFQ, so other VMs' service is unperturbed. *)
        let admitted (c : Message.call) =
          match Hashtbl.find_opt conn.rejected_status c.Message.call_seq with
          | Some status ->
              (* Retransmit of a seq this router already rejected (the
                 guest's copy of the rejection was lost): replay the
                 same verdict.  Forwarding instead would contradict the
                 Skip the backend consumed for this seq. *)
              record_trace_cat t "breaker" "vm%d reject replay seq=%d"
                (Vm.id vm) c.Message.call_seq;
              reject_call conn c status;
              None
          | None -> (
              match conn.breaker with
              | Some b when not (Policy.Breaker.admit b) ->
                  t.quarantined <- t.quarantined + 1;
                  record_trace_cat t "breaker" "vm%d quarantined %s seq=%d"
                    (Vm.id vm) c.Message.call_fn c.Message.call_seq;
                  reject_call conn c Server.status_vm_quarantined;
                  None
              | _ -> Some c)
        in
        let admit_and_police c =
          match admitted c with None -> None | Some c -> police c
        in
        (* Policing can stall (quota window, token bucket); keep the
           seq visible to [next_seq] for the whole stall.  Ingress is
           one sequential process, so removing one occurrence is
           exact even across retransmits of the same seq. *)
        let remove_one x =
          let rec go = function
            | [] -> []
            | y :: rest -> if y = x then rest else y :: go rest
          in
          go
        in
        let admit_and_police c =
          let seq = c.Message.call_seq in
          conn.policing_seqs <- seq :: conn.policing_seqs;
          let verdict = admit_and_police c in
          conn.policing_seqs <- remove_one seq conn.policing_seqs;
          verdict
        in
        (match Message.decode data with
        | Error _ -> t.rejected <- t.rejected + 1
        | Ok (Message.Reply _) | Ok (Message.Upcall _) | Ok (Message.Skip _)
        | Ok (Message.Nak _) ->
            (* Nak is server-to-guest only; a guest sending one is bogus. *)
            t.rejected <- t.rejected + 1
        | Ok (Message.Call c) -> (
            Vm.charge_bytes vm (Bytes.length data);
            mark_in c;
            match admit_and_police c with
            | None -> send_skip conn [ c.Message.call_seq ]
            | Some cost -> push_wfq ~cost data [ c.Message.call_seq ])
        | Ok (Message.Batch calls) ->
            Vm.charge_bytes vm (Bytes.length data);
            List.iter mark_in calls;
            (* Police per contained call; every member is answered:
               verified members are forwarded (and were charged),
               rejected members got rejection replies above and their
               seqs are skipped at the server.  Never drop a verified,
               already-charged call. *)
            let results =
              List.map (fun c -> (c, admit_and_police c)) calls
            in
            let rejected_seqs =
              List.filter_map
                (fun ((c : Message.call), v) ->
                  if v = None then Some c.Message.call_seq else None)
                results
            in
            send_skip conn rejected_seqs;
            let accepted =
              List.filter_map
                (fun (c, v) -> Option.map (fun cost -> (c, cost)) v)
                results
            in
            (match accepted with
            | [] -> ()
            | _ ->
                let cost =
                  List.fold_left (fun a (_, c) -> a +. c) 0.0 accepted
                in
                let seqs =
                  List.map
                    (fun ((c : Message.call), _) -> c.Message.call_seq)
                    accepted
                in
                let data =
                  if rejected_seqs = [] then data
                  else
                    match accepted with
                    | [ (c, _) ] -> Message.encode (Message.Call c)
                    | _ ->
                        Message.encode
                          (Message.Batch (List.map fst accepted))
                in
                push_wfq ~cost data seqs));
        loop ()
      in
      loop ());
  spawn_egress t conn server_side;
  conn

(* Administration interface (§4.3): adjust policies at runtime. *)

let set_rate_limit t ~vm_id ~rate_per_s ~burst =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.set_rate_limit: unknown vm"
  | Some conn ->
      conn.bucket <-
        Some (Policy.Token_bucket.create t.engine ~rate_per_s ~burst)

let clear_rate_limit t ~vm_id =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.clear_rate_limit: unknown vm"
  | Some conn -> conn.bucket <- None

let set_weight t ~vm_id ~weight =
  match find_conn t vm_id with
  | None -> invalid_arg "Wfq.set_weight: unknown flow"
  | Some conn ->
      Policy.Wfq.set_weight
        (backend_exn t conn.rc_backend).bs_wfq
        ~flow_id:vm_id ~weight

let set_quota t ~vm_id ~budget ~window_ns =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.set_quota: unknown vm"
  | Some conn ->
      conn.quota <- Some (Policy.Quota.create t.engine ~window_ns ~budget)

let throttle_ns t ~vm_id =
  match find_conn t vm_id with
  | Some { bucket = Some b; _ } -> Policy.Token_bucket.throttle_ns b
  | _ -> 0

(* Circuit-breaker administration. *)

type breaker_info = {
  bi_state : Policy.Breaker.state;
  bi_trips : int;
  bi_rejections : int;
  bi_fault_replies : int;
}

let set_breaker t ~vm_id config =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.set_breaker: unknown vm"
  | Some conn ->
      conn.breaker <- Some (Policy.Breaker.create t.engine config)

let breaker_info t ~vm_id =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.breaker_info: unknown vm"
  | Some conn ->
      Option.map
        (fun b ->
          {
            bi_state = Policy.Breaker.state b;
            bi_trips = Policy.Breaker.trips b;
            bi_rejections = Policy.Breaker.rejections b;
            bi_fault_replies = conn.fault_replies;
          })
        conn.breaker

let clear_breaker t ~vm_id =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.clear_breaker: unknown vm"
  | Some conn -> (
      match conn.breaker with
      | Some b ->
          Policy.Breaker.reset b;
          record_trace_cat t "breaker" "vm%d breaker cleared" vm_id
      | None -> ())

let breaker_trips t ~vm_id =
  match find_conn t vm_id with
  | Some { breaker = Some b; _ } -> Policy.Breaker.trips b
  | _ -> 0

let fault_replies t ~vm_id =
  match find_conn t vm_id with
  | Some conn -> conn.fault_replies
  | None -> 0

let paced_ns t = t.paced_ns

(* Recovery after an API-server restart: every forwarded message still
   owing replies goes back through the WFQ and is re-sent.  Seqs the
   server did execute before crashing are answered from its reply log
   (idempotent replay), so wholesale requeue is safe. *)
let requeue_conn t conn ~vm_id =
  let wfq = (backend_exn t conn.rc_backend).bs_wfq in
  let msgs = List.rev conn.in_flight (* oldest first *) in
  conn.in_flight <- [];
  List.iter
    (fun m ->
      t.requeued <- t.requeued + 1;
      record_trace t "vm%d requeue %d seqs" vm_id (List.length m.if_seqs);
      conn.pending_seqs <- m.if_seqs @ conn.pending_seqs;
      Policy.Wfq.push wfq ~flow_id:vm_id ~cost:m.if_cost
        (conn, m.if_cost, m.if_data, m.if_seqs))
    msgs;
  List.length msgs

let requeue_in_flight t ~vm_id =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.requeue_in_flight: unknown vm"
  | Some conn -> requeue_conn t conn ~vm_id

let in_flight_calls t ~vm_id =
  match find_conn t vm_id with
  | None -> 0
  | Some conn ->
      List.fold_left (fun a m -> a + List.length m.if_seqs) 0 conn.in_flight

let in_flight_seqs t ~vm_id =
  match find_conn t vm_id with
  | None -> []
  | Some conn ->
      List.sort Stdlib.compare
        (List.concat_map (fun m -> m.if_seqs) conn.in_flight)

(* {1 Multi-backend steering (device pool)} *)

let backend_of t ~vm_id =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.backend_of: unknown vm"
  | Some conn -> conn.rc_backend

(* The first live seq a new backend will observe for this VM: the
   smallest seq still queued or in flight, else one past the contiguous
   ingress high-water mark (which also covers seqs the guest sent that
   have not reached ingress yet — a gap below the max keeps the cursor
   behind it).  Migration calls this while the source worker is paused,
   then seeds the destination's in-order cursor with it. *)
let next_seq t ~vm_id =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.next_seq: unknown vm"
  | Some conn ->
      let outstanding =
        conn.policing_seqs @ conn.pending_seqs
        @ List.concat_map (fun m -> m.if_seqs) conn.in_flight
      in
      List.fold_left Stdlib.min (conn.contig_seq + 1) outstanding

(* Live re-steer: move the VM's flow — WFQ backlog, in-flight calls,
   future ingress — onto another backend.  In-flight calls are
   re-forwarded wholesale; ones the old server already executed may run
   again on the new one (at-least-once, same contract as the
   restart/requeue path).  Skip notices the old backend consumed are
   re-sent to the new one so policed-away seqs cannot park its in-order
   cursor. *)
let resteer t ~vm_id ~backend ~server_side =
  match find_conn t vm_id with
  | None -> invalid_arg "Router.resteer: unknown vm"
  | Some conn ->
      if not (List.mem_assoc backend t.backends) then
        invalid_arg (Printf.sprintf "Router.resteer: unknown backend %d" backend);
      let src = backend_exn t conn.rc_backend in
      let dst = backend_exn t backend in
      let weight = Policy.Wfq.flow_weight src.bs_wfq ~flow_id:vm_id in
      let queued = Policy.Wfq.remove_flow src.bs_wfq ~flow_id:vm_id in
      Policy.Wfq.add_flow dst.bs_wfq ~flow_id:vm_id ~weight;
      conn.rc_backend <- backend;
      conn.server_side <- server_side;
      List.iter
        (fun (payload, cost) ->
          Policy.Wfq.push dst.bs_wfq ~flow_id:vm_id ~cost payload)
        queued;
      let requeued = requeue_conn t conn ~vm_id in
      (* Forward skips the new backend has not seen and might wait on. *)
      let expected = next_seq t ~vm_id in
      let live_skips =
        List.sort_uniq Stdlib.compare
          (List.filter (fun s -> s >= expected) conn.skipped_seqs)
      in
      conn.skipped_seqs <- [];
      send_skip conn live_skips;
      start_dispatcher t dst;
      spawn_egress t conn server_side;
      t.resteered <- t.resteered + 1;
      record_trace t "vm%d resteer %d->%d (%d queued, %d requeued)" vm_id
        src.bs_id dst.bs_id (List.length queued) requeued

(* Cross-router flow transfer: the cluster-tier generalization of
   [resteer].  The VM's whole connection — guest endpoint, seq ledger,
   policy objects, in-flight ledger — moves wholesale to a backend of
   {e another} router (another host's interposition point, same engine).
   The live ingress process follows via [rc_owner]; policy objects
   (bucket/quota/breaker) were built on the shared engine and move with
   the conn unchanged.  Same at-least-once contract as [resteer]. *)
let transfer_flow t ~dst ~vm_id ~backend ~server_side =
  if t == dst then resteer t ~vm_id ~backend ~server_side
  else
    match find_conn t vm_id with
    | None -> invalid_arg "Router.transfer_flow: unknown vm"
    | Some conn ->
        if t.engine != dst.engine then
          invalid_arg "Router.transfer_flow: routers on different engines";
        if not (List.mem_assoc backend dst.backends) then
          invalid_arg
            (Printf.sprintf "Router.transfer_flow: unknown backend %d" backend);
        if List.mem_assoc vm_id dst.conns then
          invalid_arg "Router.transfer_flow: vm already on destination router";
        let src_b = backend_exn t conn.rc_backend in
        let dst_b = backend_exn dst backend in
        let weight = Policy.Wfq.flow_weight src_b.bs_wfq ~flow_id:vm_id in
        let queued = Policy.Wfq.remove_flow src_b.bs_wfq ~flow_id:vm_id in
        t.conns <- List.remove_assoc vm_id t.conns;
        dst.conns <- (vm_id, conn) :: dst.conns;
        conn.rc_owner <- dst;
        conn.rc_backend <- backend;
        conn.server_side <- server_side;
        Policy.Wfq.add_flow dst_b.bs_wfq ~flow_id:vm_id ~weight;
        List.iter
          (fun (payload, cost) ->
            Policy.Wfq.push dst_b.bs_wfq ~flow_id:vm_id ~cost payload)
          queued;
        let requeued = requeue_conn dst conn ~vm_id in
        (* Skips the old backend consumed that the new one might wait on. *)
        let expected = next_seq dst ~vm_id in
        let live_skips =
          List.sort_uniq Stdlib.compare
            (List.filter (fun s -> s >= expected) conn.skipped_seqs)
        in
        conn.skipped_seqs <- [];
        send_skip conn live_skips;
        start_dispatcher dst dst_b;
        spawn_egress dst conn server_side;
        t.resteered <- t.resteered + 1;
        dst.resteered <- dst.resteered + 1;
        record_trace t "vm%d transfer-out lane %d (%d queued, %d requeued)"
          vm_id src_b.bs_id (List.length queued) requeued;
        record_trace dst "vm%d transfer-in lane %d" vm_id dst_b.bs_id
