(* The AvA-generated guest library for SimCL.

   Implements the full {!Ava_simcl.Api.S} over a {!Ava_remoting.Stub}:
   this is what the guest application links against instead of the vendor
   library.  Marshalling layout, synchrony and size accounting all follow
   the compiled plan of the refined CAvA spec (see {!Ava_spec.Specs}).

   Conventions:
   - one wire value per C parameter, in declaration order;
   - object-creating calls return server-assigned virtual ids;
   - event out-parameters are guest-assigned ids ([Stub.fresh_handle]) so
     asynchronously forwarded enqueues can hand back an event immediately;
   - asynchronously forwarded calls report failures via the stub's
     deferred-error channel, surfaced by the next synchronous call (the
     paper's fidelity caveat, §4.2). *)

module Stub = Ava_remoting.Stub
module Wire = Ava_remoting.Wire
module Message = Ava_remoting.Message

open Ava_simcl.Types
open Codec

let cl_true = 1
let cl_false = 0

let bool_int b = if b then cl_true else cl_false

type t = { stub : Stub.t }

let status_error code = error_of_code code

(* Finish a synchronous invocation: deferred async errors outrank the
   current call's (successful) result. *)
let finish stub result parse =
  match result with
  | Error msg -> Error (Remoting_failure msg)
  | Ok None -> assert false
  | Ok (Some (reply : Message.reply)) -> (
      match Stub.take_deferred_error stub with
      | Some (_fn, code) -> Error (status_error code)
      | None ->
          if reply.Message.reply_status <> 0 then
            Error (status_error reply.Message.reply_status)
          else parse reply)

(* Fire an asynchronously forwarded call; per the paper it returns
   success immediately. *)
let fire stub ?on_reply ~fn ~env ~args ok =
  match Stub.invoke stub ?on_reply ~fn ~env ~args with
  | Error msg -> Error (Remoting_failure msg)
  | Ok None -> Ok ok
  | Ok (Some (reply : Message.reply)) ->
      (* The plan judged this invocation synchronous after all. *)
      if reply.Message.reply_status <> 0 then
        Error (status_error reply.Message.reply_status)
      else Ok ok

let sync stub ~fn ~env ~args parse =
  finish stub (Stub.invoke ~force_sync:true stub ~fn ~env ~args) parse

let ret_unit (_ : Message.reply) = Ok ()

let ret_handle (reply : Message.reply) =
  match reply.Message.reply_ret with
  | Wire.Handle _ as v -> (
      (* Range-checked: a handle that doesn't fit a native int is a
         marshalling error, not a silently wrapped id. *)
      match Wire.to_int v with
      | Some n -> Ok n
      | None -> Error (Remoting_failure "handle out of int range"))
  | _ -> Error (Remoting_failure "expected handle return")

let out_exn reply n =
  match List.nth_opt reply.Message.reply_outs n with
  | Some v -> v
  | None -> raise Bad_args

let create stub =
  let t = { stub } in
  let module M = struct
    (* --- platform / device ------------------------------------------- *)

    let clGetPlatformIDs () =
      sync t.stub ~fn:"clGetPlatformIDs"
        ~env:[ ("num_entries", 16) ]
        ~args:[ i 16; u; u ]
        (fun reply -> Ok (to_l (out_exn reply 0)))

    let clGetPlatformInfo p info =
      sync t.stub ~fn:"clGetPlatformInfo"
        ~env:[ ("param_name", platform_info_to_int info); ("value_size", 256) ]
        ~args:[ h p; i (platform_info_to_int info); i 256; u ]
        (fun reply -> Ok (Bytes.to_string (to_b (out_exn reply 0))))

    let clGetDeviceIDs p ty =
      sync t.stub ~fn:"clGetDeviceIDs"
        ~env:
          [ ("device_type", device_type_to_int ty); ("num_entries", 16) ]
        ~args:[ h p; i (device_type_to_int ty); i 16; u; u ]
        (fun reply -> Ok (to_l (out_exn reply 0)))

    let clGetDeviceInfo d info =
      sync t.stub ~fn:"clGetDeviceInfo"
        ~env:[ ("param_name", device_info_to_int info); ("value_size", 256) ]
        ~args:[ h d; i (device_info_to_int info); i 256; u ]
        (fun reply -> Ok (decode_info (to_b (out_exn reply 0))))

    (* --- contexts ------------------------------------------------------ *)

    let clCreateContext devices =
      sync t.stub ~fn:"clCreateContext"
        ~env:[ ("num_devices", List.length devices) ]
        ~args:[ l devices; i (List.length devices); u ]
        ret_handle

    let clRetainContext c =
      fire t.stub ~fn:"clRetainContext" ~env:[] ~args:[ h c ] ()

    let clReleaseContext c =
      fire t.stub ~fn:"clReleaseContext" ~env:[] ~args:[ h c ] ()

    let clGetContextInfo c =
      sync t.stub ~fn:"clGetContextInfo" ~env:[] ~args:[ h c; u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    (* --- command queues ------------------------------------------------ *)

    let clCreateCommandQueue c d ~profiling =
      let props = if profiling then 2 else 0 in
      sync t.stub ~fn:"clCreateCommandQueue"
        ~env:[ ("properties", props) ]
        ~args:[ h c; h d; i props; u ]
        ret_handle

    let clRetainCommandQueue q =
      fire t.stub ~fn:"clRetainCommandQueue" ~env:[] ~args:[ h q ] ()

    let clReleaseCommandQueue q =
      fire t.stub ~fn:"clReleaseCommandQueue" ~env:[] ~args:[ h q ] ()

    let clGetCommandQueueInfo q =
      sync t.stub ~fn:"clGetCommandQueueInfo" ~env:[] ~args:[ h q; u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    (* --- memory objects ------------------------------------------------ *)

    let clCreateBuffer c ~size =
      sync t.stub ~fn:"clCreateBuffer"
        ~env:[ ("flags", 0); ("size", size) ]
        ~args:[ h c; i 0; i size; u ]
        ret_handle

    let clRetainMemObject m =
      fire t.stub ~fn:"clRetainMemObject" ~env:[] ~args:[ h m ] ()

    let clReleaseMemObject m =
      fire t.stub ~fn:"clReleaseMemObject" ~env:[] ~args:[ h m ] ()

    let clGetMemObjectInfo m =
      sync t.stub ~fn:"clGetMemObjectInfo" ~env:[] ~args:[ h m; u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    (* --- programs ------------------------------------------------------ *)

    let clCreateProgramWithSource c ~source =
      sync t.stub ~fn:"clCreateProgramWithSource"
        ~env:[ ("source_size", String.length source) ]
        ~args:
          [ h c; b (Bytes.of_string source); i (String.length source); u ]
        ret_handle

    let clBuildProgram p ~options =
      sync t.stub ~fn:"clBuildProgram"
        ~env:[ ("options_size", String.length options) ]
        ~args:[ h p; b (Bytes.of_string options); i (String.length options) ]
        ret_unit

    let clGetProgramBuildInfo p =
      sync t.stub ~fn:"clGetProgramBuildInfo"
        ~env:[ ("value_size", 4096) ]
        ~args:[ h p; i 4096; u ]
        (fun reply -> Ok (Bytes.to_string (to_b (out_exn reply 0))))

    let clRetainProgram p =
      fire t.stub ~fn:"clRetainProgram" ~env:[] ~args:[ h p ] ()

    let clReleaseProgram p =
      fire t.stub ~fn:"clReleaseProgram" ~env:[] ~args:[ h p ] ()

    (* --- kernels -------------------------------------------------------- *)

    let clCreateKernel p ~name =
      sync t.stub ~fn:"clCreateKernel"
        ~env:[ ("kernel_name_size", String.length name) ]
        ~args:[ h p; b (Bytes.of_string name); i (String.length name); u ]
        ret_handle

    let clRetainKernel k =
      fire t.stub ~fn:"clRetainKernel" ~env:[] ~args:[ h k ] ()

    let clReleaseKernel k =
      fire t.stub ~fn:"clReleaseKernel" ~env:[] ~args:[ h k ] ()

    (* The paper's flagship async example: forwarded without waiting. *)
    let clSetKernelArg k ~index arg =
      let payload = encode_kernel_arg arg in
      fire t.stub ~fn:"clSetKernelArg"
        ~env:[ ("arg_index", index); ("arg_size", Bytes.length payload) ]
        ~args:[ h k; i index; i (Bytes.length payload); b payload ]
        ()

    let clGetKernelInfo k =
      sync t.stub ~fn:"clGetKernelInfo"
        ~env:[ ("value_size", 256) ]
        ~args:[ h k; i 256; u ]
        (fun reply -> Ok (Bytes.to_string (to_b (out_exn reply 0))))

    let clGetKernelWorkGroupInfo k d =
      sync t.stub ~fn:"clGetKernelWorkGroupInfo" ~env:[] ~args:[ h k; h d; u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    (* --- enqueue operations --------------------------------------------- *)

    (* Event out-parameters: pre-assign a guest id when the caller wants
       an event, so even async forwards return a usable handle. *)
    let event_arg ~want_event =
      if want_event then
        let gid = Stub.fresh_handle t.stub in
        (h gid, Some gid)
      else (u, None)

    let clEnqueueNDRangeKernel q k ~global_work_size ~local_work_size
        ~wait_list ~want_event =
      let ev, gid = event_arg ~want_event in
      fire t.stub ~fn:"clEnqueueNDRangeKernel"
        ~env:
          [
            ("global_work_size", global_work_size);
            ("local_work_size", local_work_size);
            ("num_events_in_wait_list", List.length wait_list);
          ]
        ~args:
          [
            h q; h k; i global_work_size; i local_work_size;
            i (List.length wait_list); l wait_list; ev;
          ]
        gid

    let clEnqueueTask q k ~wait_list ~want_event =
      let ev, gid = event_arg ~want_event in
      fire t.stub ~fn:"clEnqueueTask"
        ~env:[ ("num_events_in_wait_list", List.length wait_list) ]
        ~args:[ h q; h k; i (List.length wait_list); l wait_list; ev ]
        gid

    let clEnqueueReadBuffer q m ~blocking ~offset ~size ~wait_list ~want_event
        =
      let ev, gid = event_arg ~want_event in
      let dst = Bytes.make (Stdlib.max 0 size) '\000' in
      let env =
        [
          ("blocking_read", bool_int blocking);
          ("offset", offset);
          ("size", size);
          ("num_events_in_wait_list", List.length wait_list);
        ]
      in
      let args =
        [
          h q; h m; i (bool_int blocking); i offset; i size; u;
          i (List.length wait_list); l wait_list; ev;
        ]
      in
      let blit (reply : Message.reply) =
        match reply.Message.reply_outs with
        | Wire.Blob data :: _ when reply.Message.reply_status = 0 ->
            Bytes.blit data 0 dst 0
              (Stdlib.min (Bytes.length data) (Bytes.length dst))
        | _ -> ()
      in
      if blocking then
        sync t.stub ~fn:"clEnqueueReadBuffer" ~env ~args (fun reply ->
            blit reply;
            Ok (dst, gid))
      else
        (* Asynchronously forwarded: the data lands in [dst] when the
           reply arrives; callers must wait on the event or clFinish. *)
        fire t.stub ~on_reply:blit ~fn:"clEnqueueReadBuffer" ~env ~args
          (dst, gid)

    let clEnqueueWriteBuffer q m ~blocking ~offset ~src ~wait_list ~want_event
        =
      let ev, gid = event_arg ~want_event in
      let size = Bytes.length src in
      let env =
        [
          ("blocking_write", bool_int blocking);
          ("offset", offset);
          ("size", size);
          ("num_events_in_wait_list", List.length wait_list);
        ]
      in
      let args =
        [
          h q; h m; i (bool_int blocking); i offset; i size; b (Bytes.copy src);
          i (List.length wait_list); l wait_list; ev;
        ]
      in
      if blocking then
        sync t.stub ~fn:"clEnqueueWriteBuffer" ~env ~args (fun _ -> Ok gid)
      else fire t.stub ~fn:"clEnqueueWriteBuffer" ~env ~args gid

    let clEnqueueCopyBuffer q ~src ~dst ~src_offset ~dst_offset ~size
        ~wait_list ~want_event =
      let ev, gid = event_arg ~want_event in
      fire t.stub ~fn:"clEnqueueCopyBuffer"
        ~env:
          [
            ("src_offset", src_offset);
            ("dst_offset", dst_offset);
            ("size", size);
            ("num_events_in_wait_list", List.length wait_list);
          ]
        ~args:
          [
            h q; h src; h dst; i src_offset; i dst_offset; i size;
            i (List.length wait_list); l wait_list; ev;
          ]
        gid

    let clEnqueueFillBuffer q m ~pattern ~offset ~size ~wait_list ~want_event
        =
      let ev, gid = event_arg ~want_event in
      fire t.stub ~fn:"clEnqueueFillBuffer"
        ~env:
          [
            ("pattern", Char.code pattern);
            ("offset", offset);
            ("size", size);
            ("num_events_in_wait_list", List.length wait_list);
          ]
        ~args:
          [
            h q; h m; i (Char.code pattern); i offset; i size;
            i (List.length wait_list); l wait_list; ev;
          ]
        gid

    (* --- synchronization ------------------------------------------------ *)

    let clFlush q = fire t.stub ~fn:"clFlush" ~env:[] ~args:[ h q ] ()

    let clFinish q =
      sync t.stub ~fn:"clFinish" ~env:[] ~args:[ h q ] ret_unit

    let clWaitForEvents events =
      sync t.stub ~fn:"clWaitForEvents"
        ~env:[ ("num_events", List.length events) ]
        ~args:[ i (List.length events); l events ]
        ret_unit

    (* --- events ---------------------------------------------------------- *)

    let clGetEventInfo ev =
      sync t.stub ~fn:"clGetEventInfo" ~env:[] ~args:[ h ev; u ]
        (fun reply -> Ok (event_status_of_int (to_i (out_exn reply 0))))

    let clGetEventProfilingInfo ev info =
      sync t.stub ~fn:"clGetEventProfilingInfo"
        ~env:[ ("param_name", profiling_info_to_int info) ]
        ~args:[ h ev; i (profiling_info_to_int info); u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    let clReleaseEvent ev =
      fire t.stub ~fn:"clReleaseEvent" ~env:[] ~args:[ h ev ] ()
  end in
  ((module M : Ava_simcl.Api.S), t)

let stub t = t.stub
