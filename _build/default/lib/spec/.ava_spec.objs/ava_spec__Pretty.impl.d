lib/spec/pretty.ml: Ast Fmt List String Validate
