(** The simulated QuickAssist card: a pool of compression engines behind
    a PCIe DMA path.

    The card computes a real, checkable function — run-length encoding —
    so compression results verify end to end and ratio accounting is
    meaningful. *)

open Ava_sim

type timing = {
  engine_bytes_per_s : float;  (** per-engine (de)compression rate *)
  setup_ns : Time.t;  (** descriptor + DMA setup per operation *)
  pcie_bytes_per_s : float;
  engines : int;
}

val dh895xcc : timing
(** A DH895xCC-class card: 2 engines at 3.5 GB/s. *)

type t

val create : ?timing:timing -> Engine.t -> t

val engine_of : t -> Engine.t
val ops : t -> int
val bytes_in : t -> int
val bytes_out : t -> int

val rle_compress : bytes -> bytes
(** Reference codec, exposed for tests. *)

val rle_decompress : bytes -> (bytes, [ `Corrupt ]) result

val compress : t -> input:bytes -> (bytes, [ `Corrupt ]) result
(** Offload one compression; blocks for DMA + engine time. *)

val decompress : t -> input:bytes -> (bytes, [ `Corrupt ]) result
