(** The guest library runtime: AvA's API-agnostic marshalling engine on
    the VM side.

    Generated guest stubs (the plan-driven glue in [Ava_core]) call
    {!invoke}; this module handles sequencing, the sync/async decision
    from the compiled {!Ava_codegen.Plan}, reply matching, and the
    paper's deferred-error semantics: an asynchronously forwarded call's
    failure is reported by the next synchronous call on the same stub
    (§4.2). *)

open Ava_sim

module Plan = Ava_codegen.Plan
module Transport = Ava_transport.Transport

val first_guest_handle : int
(** Guest-assigned object ids start here — above the server's virtual-id
    range, so the two id spaces never collide. *)

type t

(** Recovery policy for lost calls/replies: after [timeout_ns] without a
    reply the encoded call is resent under its original seq (the server
    deduplicates and replays cached replies), the timeout scales by
    [backoff] per attempt, and after [max_retries] resends the call
    fails with {!Server.status_timeout} — surfaced directly for sync
    calls, through the deferred-error channel for async ones.  Each
    individual sleep is scattered uniformly in [±jitter] of the base
    schedule by a per-VM seeded stream, so two stubs that lose frames at
    the same instant do not resend in lockstep; [jitter = 0.0] draws
    nothing and reproduces the pure exponential schedule bit-for-bit. *)
type retry = {
  timeout_ns : Time.t;
  max_retries : int;
  backoff : float;
  jitter : float;
}

val default_retry : retry
(** 20 ms initial timeout, doubling, 12 attempts, 25% jitter. *)

(** Guest half of the content-addressed transfer cache: blobs within
    [cache_min_bytes, cache_max_bytes] are hashed (FNV-1a 64) and, once
    the server has acknowledged a digest, re-sent as a 13-byte
    {!Wire.value.Blob_ref} instead of the payload.  A cache-miss
    {!Message.t.Nak} makes the stub re-send the full payload under the
    original seq.  [cache_max_bytes] must not exceed the server store
    capacity, or an oversized blob would NAK forever. *)
type cache = { cache_min_bytes : int; cache_max_bytes : int }

val cache_for_capacity : int -> cache
(** [cache_for_capacity capacity] = 1 KiB minimum, [capacity] maximum —
    the stub config matching a server store of that capacity. *)

val sva_min_bytes : int
(** Blobs of at least this size (one page) are pinned and sent as
    [Mapped_ref]s when SVA is armed. *)

val create :
  ?batch_limit:int ->
  ?retry:retry ->
  ?cache:cache ->
  ?sva:Ava_device.Iommu.t ->
  ?obs:Ava_obs.Obs.t ->
  Engine.t ->
  vm_id:int ->
  plan:Plan.t ->
  ep:Transport.endpoint ->
  t
(** Also spawns the reply-receiver process on [ep].  [batch_limit] > 1
    enables rCUDA-style API batching: up to that many asynchronously
    forwarded calls are buffered into one transport message, flushed by
    the next synchronous call or by a 32 KiB size cap.  [retry] arms a
    per-call retransmission watchdog (off by default: without it no
    watchdog processes exist and the stub behaves exactly as before).
    [cache] arms the transfer cache (off by default: without it no
    hashing happens and the wire traffic is byte-identical to the
    pre-cache stack).  [sva] arms shared virtual addressing: blobs of at
    least {!sva_min_bytes} are pinned into the device IOVA window
    through the given IOMMU and travel as 13-byte [Mapped_ref]s (off by
    default; the server needs {!Server.set_sva} with the same IOMMU).
    [obs] arms per-call latency attribution: the stub
    opens a span per forwarded call and stamps its marshal/send/reply
    marks; the registry is passive and never advances virtual time. *)

val vm_id : t -> int

val retries : t -> int
(** Watchdog resends performed so far. *)

val timeouts : t -> int
(** Calls that exhausted their retry budget. *)

val batches_sent : t -> int
(** Multi-call batch messages sent so far. *)

val sync_calls : t -> int
val async_calls : t -> int
val marshalled_bytes : t -> int
val in_flight : t -> int

val cache_refs : t -> int
(** Payloads sent as [Blob_ref] instead of their bytes. *)

val cache_saved_bytes : t -> int
(** Payload bytes elided from the wire by refs. *)

val cache_announces : t -> int
(** Payloads sent as [Blob_cached] (digest announcements). *)

val cache_nak_resends : t -> int
(** Full-payload resends triggered by cache-miss NAKs. *)

val sva_maps : t -> int
(** Blobs pinned and sent as [Mapped_ref] (SVA armed only). *)

val sva_saved_bytes : t -> int
(** Payload bytes elided from the wire by mapped refs. *)

val register_callback : t -> (Wire.value list -> unit) -> int
(** Register a guest closure; the returned id travels in place of a C
    function pointer, and server upcalls dispatch to the closure (in a
    fresh process). *)

val unregister_callback : t -> int -> unit

val upcalls_received : t -> int

val fresh_handle : t -> int
(** Allocate a guest-managed object id (the server binds its host object
    to it) — how async enqueues return usable event handles. *)

val take_deferred_error : t -> (string * int) option
(** Pop the oldest pending async failure, if any: the §4.2 deferred-error
    channel, drained by the API glue on each synchronous call. *)

val pending_errors : t -> int

val invoke :
  ?force_sync:bool ->
  ?on_reply:(Message.reply -> unit) ->
  t ->
  fn:string ->
  env:(string * int) list ->
  args:Wire.value list ->
  (Message.reply option, string) result
(** Invoke [fn].  [env] binds scalar parameters by name for the plan's
    size/synchrony expressions.  [force_sync] overrides the plan when the
    caller needs outputs immediately.  Synchronous calls return
    [Ok (Some reply)]; asynchronous calls return [Ok None] at once and
    deliver their reply through [on_reply].  [Error] means the function
    has no plan (a local failure; nothing was sent). *)

val invoke_sync :
  t ->
  fn:string ->
  env:(string * int) list ->
  args:Wire.value list ->
  (Message.reply, string) result
(** {!invoke} with [force_sync:true]. *)
