(* Multi-device pool: placement, live migration and device-loss
   evacuation.

   Four VMs land round-robin on a two-device pool (each device has its
   own API server behind one router).  While they run, an operator
   live-migrates one VM between devices — record/replay onto the
   destination server plus a router re-steer of in-flight calls — and
   then device 0 dies outright: its innocent residents are evacuated
   onto the survivor and finish with at most device-lost-class errors.
   The deployment report shows the per-device rows throughout. *)

module Pool = Ava_pool.Pool

open Ava_sim
open Ava_core
open Ava_workloads
open Ava_simcl.Types

let () =
  let e = Engine.create () in
  let host = Host.create_cl_host ~devices:2 ~placement:Pool.Round_robin e in
  let pool = Option.get host.Host.pool in

  let guests =
    List.map
      (fun name -> Host.add_cl_vm host ~name)
      [ "a"; "b"; "c"; "d" ]
  in
  List.iter
    (fun g ->
      let vm_id = Ava_hv.Vm.id g.Host.g_vm in
      Fmt.pr "%-4s placed on device %d@." (Ava_hv.Vm.name g.Host.g_vm)
        (Option.get (Pool.device_of pool ~vm_id)))
    guests;

  (* Each VM chips away at a kernel loop, tolerating only the error
     class a dying device is allowed to produce. *)
  let lost = ref 0 in
  List.iteri
    (fun i g ->
      Engine.spawn e
        ~name:(Printf.sprintf "app-%s" (Ava_hv.Vm.name g.Host.g_vm))
        (fun () ->
          let module CL = (val g.Host.g_api) in
          let s = Clutil.open_session g.Host.g_api in
          let k =
            List.hd (Clutil.build_kernels s [ ("work", 2e5, 8.0) ])
          in
          for _ = 1 to 10 do
            (match
               CL.clEnqueueNDRangeKernel s.Clutil.queue k
                 ~global_work_size:256 ~local_work_size:16 ~wait_list:[]
                 ~want_event:false
             with
            | Ok _ | Error Device_not_available -> ()
            | Error err -> failwith (error_to_string err));
            (match CL.clFinish s.Clutil.queue with
            | Ok () -> ()
            | Error Device_not_available -> incr lost
            | Error err -> failwith (error_to_string err));
            Engine.delay (Time.us (150 + (i * 40)))
          done))
    guests;

  (* Operator actions mid-run: one live migration, then device 0 dies. *)
  Engine.spawn e ~name:"operator" (fun () ->
      Engine.delay (Time.us 400);
      let a_id = Ava_hv.Vm.id (List.hd guests).Host.g_vm in
      let moved = Pool.migrate_vm pool ~vm_id:a_id ~dest:1 in
      Fmt.pr "@.migrated vm a to device 1 (%d bytes of buffers copied)@."
        moved;
      Engine.delay (Time.us 600);
      Fmt.pr "killing device 0...@.";
      Pool.kill_device pool ~device:0);
  Engine.run e;

  Fmt.pr "device 0 healthy: %b; evacuations: %d; migrations: %d; \
          device-lost errors seen: %d@."
    (Pool.is_healthy pool 0) (Pool.evacuations pool) (Pool.migrations pool)
    !lost;
  List.iter
    (fun g ->
      let vm_id = Ava_hv.Vm.id g.Host.g_vm in
      Fmt.pr "%-4s now on device %d@." (Ava_hv.Vm.name g.Host.g_vm)
        (Option.get (Pool.device_of pool ~vm_id)))
    guests;
  Fmt.pr "@.%a" Report.pp (Report.snapshot host guests)
