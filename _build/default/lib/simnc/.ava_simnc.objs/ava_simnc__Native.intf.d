lib/simnc/native.mli: Api Ava_device
