(* Abstract syntax of the CAvA API specification language.

   A specification couples C function declarations (imported from an API
   header) with declarative annotations: parameter directions, buffer
   size expressions, synchrony, resource-usage estimates and record/replay
   classes (Figure 4 of the paper). *)

type ctype =
  | Void
  | Bool
  | Char
  | Int of { signed : bool; bits : int }
  | Float of int  (** bit width *)
  | Named of string  (** typedef name, e.g. [cl_mem] *)
  | Ptr of { const : bool; pointee : ctype }

let rec ctype_to_string = function
  | Void -> "void"
  | Bool -> "bool"
  | Char -> "char"
  | Int { signed = true; bits = 32 } -> "int"
  | Int { signed = false; bits = 32 } -> "unsigned int"
  | Int { signed = true; bits = 64 } -> "long"
  | Int { signed = false; bits = 64 } -> "size_t"
  | Int { signed; bits } ->
      Printf.sprintf "%sint%d_t" (if signed then "" else "u") bits
  | Float 32 -> "float"
  | Float _ -> "double"
  | Named n -> n
  | Ptr { const; pointee } ->
      Printf.sprintf "%s%s *" (if const then "const " else "")
        (ctype_to_string pointee)

(* Integer expressions over parameter names: buffer sizes and resource
   estimates ("the size of ptr is size * 4"). *)
type expr =
  | Const of int
  | Param of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

let rec expr_to_string = function
  | Const n -> string_of_int n
  | Param p -> p
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_string a) (expr_to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_string a) (expr_to_string b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (expr_to_string a) (expr_to_string b)

let rec expr_params = function
  | Const _ -> []
  | Param p -> [ p ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_params a @ expr_params b

(* Evaluate an expression against runtime argument values. *)
let rec eval_expr env = function
  | Const n -> Ok n
  | Param p -> (
      match List.assoc_opt p env with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "unbound parameter %s" p))
  | Add (a, b) -> bin env a b ( + )
  | Sub (a, b) -> bin env a b ( - )
  | Mul (a, b) -> bin env a b ( * )
  | Div (a, b) -> (
      match (eval_expr env a, eval_expr env b) with
      | Ok _, Ok 0 -> Error "division by zero"
      | Ok x, Ok y -> Ok (x / y)
      | (Error _ as e), _ | _, (Error _ as e) -> e)

and bin env a b op =
  match (eval_expr env a, eval_expr env b) with
  | Ok x, Ok y -> Ok (op x y)
  | (Error _ as e), _ | _, (Error _ as e) -> e

type direction = In | Out | In_out

let direction_to_string = function
  | In -> "in"
  | Out -> "out"
  | In_out -> "in_out"

type param_kind =
  | Scalar
  | Handle  (** opaque handle passed by value *)
  | Buffer of { len : expr; elem_size : int }
      (** data buffer; total bytes = len * elem_size *)
  | Element of { allocates : bool }
      (** single-element out-pointer, e.g. [cl_event *event] *)
  | Callback
      (** guest function pointer; invoked via server-to-guest upcalls *)
  | Struct_ptr of { fields : (string * ctype) list }
      (** pointer to a by-value struct, marshalled field-wise *)
  | Unknown  (** inference failed; must be refined by the developer *)

type param_spec = {
  p_name : string;
  p_type : ctype;
  p_direction : direction;
  p_kind : param_kind;
  p_deallocates : bool;
  p_target : bool;
      (** the object this call modifies (drives record/replay pruning) *)
}

type sync_class =
  | Sync
  | Async
  | Sync_if of { cond_param : string; cond_const : string }
      (** sync when [cond_param] equals the named constant, else async *)
  | Sync_on of { sync_param : string }
      (** completion point: forwarded synchronously, and the reply is
          withheld until all work ordered before the object named by
          [sync_param] (an event or stream handle) has completed *)

type record_class =
  | Global_config  (** e.g. cuInit: replay verbatim on migration *)
  | Object_alloc  (** creates a tracked object *)
  | Object_dealloc  (** destroys a tracked object *)
  | Object_modify  (** mutates a tracked object; replay after re-alloc *)
  | No_record

let record_class_to_string = function
  | Global_config -> "global_config"
  | Object_alloc -> "object_alloc"
  | Object_dealloc -> "object_dealloc"
  | Object_modify -> "object_modify"
  | No_record -> "no_record"

type fn_spec = {
  f_name : string;
  f_ret : ctype;
  f_params : param_spec list;
  f_sync : sync_class;
  f_stream : string option;
      (** [ava_stream] ordering key: the handle parameter whose queue
          orders this call relative to other enqueued work *)
  f_record : record_class;
  f_resources : (string * expr) list;
      (** named resource estimates, e.g. ("bus_bytes", size) *)
  f_inferred : string list;  (** notes on auto-inferred annotations *)
  f_unresolved : string list;  (** questions the developer must answer *)
}

type type_spec = {
  t_name : string;
  t_success : string option;  (** constant denoting success for this type *)
  t_is_handle : bool;
}

type api_spec = {
  api_name : string;
  includes : string list;
  constants : (string * int) list;  (** from header [#define]s *)
  types : type_spec list;
  fns : fn_spec list;
}

let find_fn spec name =
  List.find_opt (fun f -> String.equal f.f_name name) spec.fns

let find_type spec name =
  List.find_opt (fun t -> String.equal t.t_name name) spec.types

let find_constant spec name = List.assoc_opt name spec.constants

let is_handle_type spec = function
  | Named n -> (
      match find_type spec n with Some t -> t.t_is_handle | None -> false)
  | _ -> false
