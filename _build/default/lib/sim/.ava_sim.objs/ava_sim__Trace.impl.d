lib/sim/trace.ml: Fmt Format List String Time
