(** Resource-management policies enforced by the router (§4.3 of the
    paper): token-bucket rate limiting, weighted fair queueing on
    estimated device time, and windowed device-time quotas. *)

open Ava_sim

module Token_bucket : sig
  type t

  val create : Engine.t -> rate_per_s:float -> burst:float -> t
  (** Starts full (the burst is free). *)

  val take : t -> float -> unit
  (** Block the calling process until the tokens are available, then
      consume them. *)

  val throttle_ns : t -> Time.t
  (** Total time spent throttled so far. *)

  val available : t -> float
end

(** Weighted fair queueing with per-item finish tags (virtual time).
    Flows are VMs; item cost is the router's resource estimate for the
    forwarded call. *)
module Wfq : sig
  type 'a t

  val create : unit -> 'a t
  val add_flow : 'a t -> flow_id:int -> weight:float -> unit

  val set_weight : 'a t -> flow_id:int -> weight:float -> unit
  (** Takes effect immediately: the flow's pending items are re-tagged
      in FIFO order under the new weight, as if freshly enqueued at the
      scheduler's current virtual time, so a backlogged flow does not
      keep draining at its old rate until the backlog clears. *)

  val flow_weight : 'a t -> flow_id:int -> float
  (** The flow's current weight. *)

  val push : 'a t -> flow_id:int -> cost:float -> 'a -> unit
  (** Enqueue one item; wakes the blocked popper, if any. *)

  val remove_flow : 'a t -> flow_id:int -> ('a * float) list
  (** Remove the flow, returning its queued (payload, cost) items in
      FIFO order; they stop counting toward {!backlog}.  Used to
      re-steer a flow onto another scheduler instance. *)

  val pop : 'a t -> int * 'a
  (** Remove the item with the smallest finish tag, blocking the calling
      process while all flows are empty.  Per-flow FIFO order is
      preserved.  At most one concurrent popper is supported. *)

  val backlog : 'a t -> int

  val pending_in_other_flows : 'a t -> flow_id:int -> bool
  (** Is any flow other than [flow_id] non-empty?  (Contention probe.) *)
end

(** Per-VM error-budget circuit breaker: [failure_threshold] fault
    replies within a sliding [cooldown_ns] window trip the breaker open;
    while open, new calls are rejected at admission.  After
    [cooldown_ns] the breaker half-opens and admits exactly one probe
    call — a clean reply closes it, another fault re-opens it.  The
    budget is windowed rather than consecutive so that the successful
    async acknowledgements interleaved with a guest's fault replies
    cannot mask a fault burst. *)
module Breaker : sig
  type state = Closed | Open | Half_open

  type config = { failure_threshold : int; cooldown_ns : Time.t }

  val default_config : config
  (** 3 failures within a 10 ms window; 10 ms cooldown. *)

  type t

  val create : Engine.t -> config -> t

  val state : t -> state
  (** Current state ([Open] lazily becomes [Half_open] once the cooldown
      has elapsed). *)

  val admit : t -> bool
  (** May this call proceed?  [Half_open] admits one probe at a time;
      refusals bump {!rejections}. *)

  val record_failure : t -> unit
  (** Feed a fault reply (device-lost, TDR reset) into the budget. *)

  val record_success : t -> unit
  (** Feed a clean reply; closes a half-open breaker. *)

  val reset : t -> unit
  (** Administrative clear: force the breaker closed. *)

  val trips : t -> int
  (** Transitions into [Open]. *)

  val rejections : t -> int
  (** Calls refused at admission. *)
end

(** Windowed budget: a VM may consume [budget] cost units per window;
    excess calls stall until the next window. *)
module Quota : sig
  type t

  val create : Engine.t -> window_ns:Time.t -> budget:float -> t

  val charge : t -> float -> unit
  (** Consume budget, blocking across window boundaries as needed.  A
      cost exceeding the whole window budget is admitted at a fresh
      window (overdrawing it), so an oversized call throttles to one
      per window rather than wedging the VM forever. *)

  val stalls : t -> int
end
