lib/simqa/native.mli: Api Device
