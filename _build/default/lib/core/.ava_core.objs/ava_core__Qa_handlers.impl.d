lib/core/qa_handlers.ml: Ava_remoting Ava_simqa Bytes Codec
