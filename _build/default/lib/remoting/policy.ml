(* Resource-management policies enforced by the router (§4.3 of the
   paper): token-bucket rate limiting, weighted fair queueing on
   estimated device time, and windowed device-time quotas. *)

open Ava_sim

module Token_bucket = struct
  type t = {
    engine : Engine.t;
    rate_per_s : float;  (** token refill rate *)
    burst : float;  (** bucket capacity *)
    mutable tokens : float;
    mutable last_refill : Time.t;
    mutable throttle_ns : Time.t;  (** total time spent throttled *)
  }

  let create engine ~rate_per_s ~burst =
    if rate_per_s <= 0.0 || burst <= 0.0 then
      invalid_arg "Token_bucket.create: rate and burst must be positive";
    {
      engine;
      rate_per_s;
      burst;
      tokens = burst;
      last_refill = Engine.now engine;
      throttle_ns = 0;
    }

  let refill t =
    let now = Engine.now t.engine in
    let dt = Time.to_float_s (now - t.last_refill) in
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate_per_s));
    t.last_refill <- now

  (* Block until [n] tokens are available, then consume them. *)
  let rec take t n =
    refill t;
    if t.tokens >= n then t.tokens <- t.tokens -. n
    else begin
      let deficit = n -. t.tokens in
      let wait = Time.of_float_s (deficit /. t.rate_per_s) in
      let wait = Time.max wait (Time.us 1) in
      t.throttle_ns <- t.throttle_ns + wait;
      Engine.delay wait;
      take t n
    end

  let throttle_ns t = t.throttle_ns

  let available t =
    refill t;
    t.tokens
end

module Wfq = struct
  (* Weighted fair queueing with per-item finish tags (virtual time).
     Flows are VMs; item cost is the router's resource estimate for the
     forwarded call. *)

  type 'a item = { tag : float; payload : 'a }

  type 'a flow = {
    flow_id : int;
    mutable weight : float;
    mutable last_tag : float;
    items : 'a item Queue.t;
  }

  type 'a t = {
    flows : (int, 'a flow) Hashtbl.t;
    mutable vtime : float;
    mutable waiter : (unit -> unit) option;
    mutable enqueued : int;
    mutable dequeued : int;
  }

  let create () =
    { flows = Hashtbl.create 8; vtime = 0.0; waiter = None; enqueued = 0; dequeued = 0 }

  let add_flow t ~flow_id ~weight =
    if weight <= 0.0 then invalid_arg "Wfq.add_flow: weight must be positive";
    Hashtbl.replace t.flows flow_id
      { flow_id; weight; last_tag = 0.0; items = Queue.create () }

  let set_weight t ~flow_id ~weight =
    match Hashtbl.find_opt t.flows flow_id with
    | None -> invalid_arg "Wfq.set_weight: unknown flow"
    | Some f -> f.weight <- weight

  let push t ~flow_id ~cost payload =
    match Hashtbl.find_opt t.flows flow_id with
    | None -> invalid_arg "Wfq.push: unknown flow"
    | Some f ->
        let start = Float.max t.vtime f.last_tag in
        let tag = start +. (Float.max 1.0 cost /. f.weight) in
        f.last_tag <- tag;
        Queue.push { tag; payload } f.items;
        t.enqueued <- t.enqueued + 1;
        (match t.waiter with
        | Some resume ->
            t.waiter <- None;
            resume ()
        | None -> ())

  let min_flow t =
    Hashtbl.fold
      (fun _ f best ->
        match Queue.peek_opt f.items with
        | None -> best
        | Some item -> (
            match best with
            | Some (_, b) when b.tag <= item.tag -> best
            | _ -> Some (f, item)))
      t.flows None

  (* Blocking pop: returns the (flow_id, payload) with the smallest
     finish tag. *)
  let rec pop t =
    match min_flow t with
    | Some (f, item) ->
        ignore (Queue.pop f.items);
        t.vtime <- Float.max t.vtime item.tag;
        t.dequeued <- t.dequeued + 1;
        (f.flow_id, item.payload)
    | None ->
        Engine.await (fun resume ->
            if t.waiter <> None then
              invalid_arg "Wfq.pop: concurrent poppers unsupported";
            t.waiter <- Some (fun () -> resume ()));
        pop t

  let backlog t = t.enqueued - t.dequeued

  (* Is any other flow waiting?  The router paces dispatch by estimated
     device time only under cross-VM contention, so single-tenant
     workloads never pay for scheduling. *)
  let pending_in_other_flows t ~flow_id =
    Hashtbl.fold
      (fun id f acc ->
        acc || (id <> flow_id && not (Queue.is_empty f.items)))
      t.flows false
end

module Quota = struct
  (* Windowed budget: a VM may consume [budget] cost units per window;
     excess calls stall until the next window. *)

  type t = {
    engine : Engine.t;
    window_ns : Time.t;
    budget : float;
    mutable window_start : Time.t;
    mutable used : float;
    mutable stalls : int;
  }

  let create engine ~window_ns ~budget =
    if budget <= 0.0 then invalid_arg "Quota.create: budget must be positive";
    {
      engine;
      window_ns;
      budget;
      window_start = Engine.now engine;
      used = 0.0;
      stalls = 0;
    }

  let rotate t =
    let now = Engine.now t.engine in
    if now - t.window_start >= t.window_ns then begin
      (* Skip forward a whole number of windows. *)
      let periods = (now - t.window_start) / t.window_ns in
      t.window_start <- t.window_start + (periods * t.window_ns);
      t.used <- 0.0
    end

  let rec charge t cost =
    rotate t;
    if t.used +. cost <= t.budget then t.used <- t.used +. cost
    else begin
      t.stalls <- t.stalls + 1;
      let now = Engine.now t.engine in
      Engine.delay (t.window_start + t.window_ns - now);
      charge t cost
    end

  let stalls t = t.stalls
end
