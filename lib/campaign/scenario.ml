(* One campaign scenario: assemble a pooled stack, interpret an op
   trace, quiesce, check the fleet invariants.

   The interpreter is total.  Any op whose reference is no longer
   valid — a slot never admitted or already retired, a dead device, a
   kill that would strand the fleet — is a recorded no-op, so every
   subsequence of a trace is itself a valid trace; the shrinker leans
   on this to delete ops freely while hunting a minimal reproducer.

   Determinism: one splitmix64 stream per concern, all split off
   [sc_seed]; the simulation itself is deterministic, so a (config,
   trace) pair fully determines the outcome. *)

module Pool = Ava_pool.Pool
module Host = Ava_core.Host
module Report = Ava_core.Report
module Server = Ava_remoting.Server
module Router = Ava_remoting.Router
module Policy = Ava_remoting.Policy
module Stub = Ava_remoting.Stub
module Faults = Ava_transport.Faults
module Transport = Ava_transport.Transport
module Devfault = Ava_device.Devfault
module Obs = Ava_obs.Obs
module Rodinia = Ava_workloads.Rodinia
module Clutil = Ava_workloads.Clutil

open Ava_sim
open Ava_simcl.Types

type config = {
  sc_devices : int;
  sc_placement : Pool.placement;
  sc_sva : bool;
  sc_doorbell : bool;
  sc_cache : int;
  sc_faults : string;
  sc_seed : int64;
  sc_max_tenants : int;
}

let default_config =
  {
    sc_devices = 3;
    sc_placement = Pool.Round_robin;
    sc_sva = true;
    sc_doorbell = true;
    sc_cache = 256 * 1024;
    sc_faults = "light";
    sc_seed = 42L;
    sc_max_tenants = 4;
  }

let random_config rng =
  let placements = [| Pool.Round_robin; Pool.Least_loaded; Pool.Bin_pack |] in
  {
    sc_devices = 2 + Rng.int rng 2;
    sc_placement = placements.(Rng.int rng 3);
    sc_sva = Rng.bool rng;
    sc_doorbell = Rng.bool rng;
    sc_cache = (if Rng.bool rng then 256 * 1024 else 0);
    sc_faults = (if Rng.int rng 4 = 0 then "none" else "light");
    sc_seed = Rng.next rng;
    sc_max_tenants = 3 + Rng.int rng 2;
  }

type invariant =
  | No_crash
  | Seq_ledger
  | Conservation
  | Residency
  | Isolation
  | Obs_twin

let invariant_name = function
  | No_crash -> "no-crash"
  | Seq_ledger -> "seq-ledger"
  | Conservation -> "conservation"
  | Residency -> "residency"
  | Isolation -> "isolation"
  | Obs_twin -> "obs-twin"

let all_invariants =
  [ No_crash; Seq_ledger; Conservation; Residency; Isolation; Obs_twin ]

let invariant_of_name s =
  List.find_opt (fun i -> String.equal (invariant_name i) s) all_invariants

type verdict = Pass | Violation of invariant * string | Hang of string

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Violation (i, d) ->
      Format.fprintf ppf "violation %s: %s" (invariant_name i) d
  | Hang d -> Format.fprintf ppf "hang: %s" d

type outcome = {
  oc_verdict : verdict;
  oc_final_ns : Time.t;
  oc_executed : int;
  oc_applied : int;
}

(* --- reference workload --------------------------------------------------- *)

(* Upload two int32 vectors, add on the device, verify the sums on
   readback.  The one workload in the mix whose device-computed output
   is checked bit-for-bit — data corruption anywhere in the remoting
   path surfaces here as [false], not just as an error status. *)
let vec_add api n =
  let module CL = (val api : Ava_simcl.Api.S) in
  let ok = Clutil.ok in
  let p = List.hd (ok (CL.clGetPlatformIDs ())) in
  let d = List.hd (ok (CL.clGetDeviceIDs p Device_gpu)) in
  let ctx = ok (CL.clCreateContext [ d ]) in
  let q = ok (CL.clCreateCommandQueue ctx d ~profiling:false) in
  let a = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
  let b = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
  let out = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
  let i32_bytes l =
    let by = Bytes.create (4 * List.length l) in
    List.iteri (fun i v -> Bytes.set_int32_le by (4 * i) (Int32.of_int v)) l;
    by
  in
  let av = List.init n (fun i -> i) and bv = List.init n (fun i -> 7 * i) in
  ignore
    (ok
       (CL.clEnqueueWriteBuffer q a ~blocking:false ~offset:0
          ~src:(i32_bytes av) ~wait_list:[] ~want_event:false));
  ignore
    (ok
       (CL.clEnqueueWriteBuffer q b ~blocking:false ~offset:0
          ~src:(i32_bytes bv) ~wait_list:[] ~want_event:false));
  let prog = ok (CL.clCreateProgramWithSource ctx ~source:"builtin vec_add") in
  ok (CL.clBuildProgram prog ~options:"");
  let k = ok (CL.clCreateKernel prog ~name:"vec_add") in
  ok (CL.clSetKernelArg k ~index:0 (Arg_mem a));
  ok (CL.clSetKernelArg k ~index:1 (Arg_mem b));
  ok (CL.clSetKernelArg k ~index:2 (Arg_mem out));
  ignore
    (ok
       (CL.clEnqueueNDRangeKernel q k ~global_work_size:n ~local_work_size:64
          ~wait_list:[] ~want_event:false));
  let data, _ =
    ok
      (CL.clEnqueueReadBuffer q out ~blocking:true ~offset:0 ~size:(4 * n)
         ~wait_list:[] ~want_event:false)
  in
  ok (CL.clFinish q);
  let got =
    List.init n (fun i -> Int32.to_int (Bytes.get_int32_le data (4 * i)))
  in
  got = List.map2 ( + ) av bv

(* Buffer churn: [n] one-shot 256 KiB buffers written, read back,
   verified and released in sequence — pure memory pressure against the
   swap and transfer-cache layers, no kernel work. *)
let buffer_churn api n =
  let module CL = (val api : Ava_simcl.Api.S) in
  let ok = Clutil.ok in
  let p = List.hd (ok (CL.clGetPlatformIDs ())) in
  let d = List.hd (ok (CL.clGetDeviceIDs p Device_gpu)) in
  let ctx = ok (CL.clCreateContext [ d ]) in
  let q = ok (CL.clCreateCommandQueue ctx d ~profiling:false) in
  let size = 256 * 1024 in
  let good = ref true in
  for i = 1 to n do
    let buf = ok (CL.clCreateBuffer ctx ~size) in
    let src = Bytes.init size (fun j -> Char.chr ((i + j) land 0xff)) in
    ignore
      (ok
         (CL.clEnqueueWriteBuffer q buf ~blocking:true ~offset:0 ~src
            ~wait_list:[] ~want_event:false));
    let back, _ =
      ok
        (CL.clEnqueueReadBuffer q buf ~blocking:true ~offset:0 ~size
           ~wait_list:[] ~want_event:false)
    in
    if not (Bytes.equal back src) then good := false;
    ok (CL.clReleaseMemObject buf)
  done;
  ok (CL.clFinish q);
  ok (CL.clReleaseCommandQueue q);
  ok (CL.clReleaseContext ctx);
  !good

(* --- interpreter ---------------------------------------------------------- *)

(* Per-tenant side-silo sessions: the NC and QA stacks live next to the
   pooled CL fleet on the same engine, one lazily created guest per
   tenant slot.  Both stacks run fault-free, so their ops extend the
   isolation check to two more generated remoting paths for free. *)
type nc_session = {
  ns_api : (module Ava_simnc.Api.S);
  ns_graph : int;  (** resident graph handle *)
}

type qa_session = {
  qs_api : (module Ava_simqa.Api.S);
  qs_cs : int;  (** compress session *)
  qs_ds : int;  (** decompress session *)
}

type tenant = {
  tn_slot : int;
  tn_guest : Host.cl_guest;
  tn_vm_id : int;
  tn_faults : Faults.t;
  mutable tn_live : bool;
  mutable tn_crashed : bool;  (** worker down, restart scheduled *)
  mutable tn_faulty : bool;  (** failures allowed by the isolation model *)
  mutable tn_pending : int;  (** submissions not yet finished *)
  mutable tn_failures : string list;  (** API failures its workloads hit *)
  mutable tn_bad_result : bool;  (** a vec_add readback had wrong sums *)
  mutable tn_nc : nc_session option;
  mutable tn_qa : qa_session option;
}

type state = {
  st_engine : Engine.t;
  st_host : Host.cl_host;
  st_config : config;
  st_rng : Rng.t;  (** per-tenant fault-seed derivation *)
  mutable st_tenants : tenant list;  (** newest first *)
  mutable st_profile : string;
  mutable st_applied : int;
  mutable st_crash_exn : string option;
  mutable st_retired : int;  (** successful retires, our side of the ledger *)
  mutable st_nc_host : Host.nc_host option;  (** lazily built side silo *)
  mutable st_qa_host : Host.qa_host option;
}

let profile_config = function "light" -> Faults.light | _ -> Faults.none

let tenant st slot =
  List.find_opt (fun t -> t.tn_slot = slot) st.st_tenants

let live_tenants st = List.filter (fun t -> t.tn_live) st.st_tenants

let current_server st vm_id =
  match st.st_host.Host.pool with
  | Some pool ->
      Option.map (fun d -> Pool.server pool d) (Pool.device_of pool ~vm_id)
  | None -> Some st.st_host.Host.server

(* The device-fault model: transient launch failures and rare hangs
   (recovered by the host TDR), always targeted at client 1 — the
   first-admitted tenant — so exactly one tenant's fault pattern is
   known in advance and everyone else must stay clean. *)
let devfault_target = 1

let make_devfaults seed =
  Devfault.create
    ~gpu:
      {
        Devfault.gpu_hang = 0.002;
        gpu_launch_fail = 0.01;
        gpu_dma_corrupt = 0.0;
        gpu_target = Some devfault_target;
      }
    ~seed ()

let admit st =
  if List.length st.st_tenants >= st.st_config.sc_max_tenants then false
  else begin
    let slot = List.length st.st_tenants in
    let faults =
      Faults.create ~seed:(Rng.next st.st_rng)
        (profile_config st.st_profile)
    in
    let guest =
      Host.add_cl_vm st.st_host ~retry:Stub.default_retry ~faults
        ~breaker:Policy.Breaker.default_config
        ~name:(Printf.sprintf "t%d" slot)
    in
    let vm_id = Ava_hv.Vm.id guest.Host.g_vm in
    st.st_tenants <-
      {
        tn_slot = slot;
        tn_guest = guest;
        tn_vm_id = vm_id;
        tn_faults = faults;
        tn_live = true;
        tn_crashed = false;
        tn_faulty = vm_id = devfault_target;
        tn_pending = 0;
        tn_failures = [];
        tn_bad_result = false;
        tn_nc = None;
        tn_qa = None;
      }
      :: st.st_tenants;
    true
  end

let submit st tn w =
  tn.tn_pending <- tn.tn_pending + 1;
  Engine.spawn st.st_engine
    ~name:(Printf.sprintf "campaign-sub-vm%d" tn.tn_vm_id)
    (fun () ->
      (try
         match w with
         | Op.Vec_add n ->
             if not (vec_add tn.tn_guest.Host.g_api n) then
               tn.tn_bad_result <- true
         | Op.Bench b -> (
             match Rodinia.find b with
             | Some bench -> bench.Rodinia.run tn.tn_guest.Host.g_api
             | None -> ())
       with
      | Clutil.Api_failure m -> tn.tn_failures <- m :: tn.tn_failures
      | exn ->
          if st.st_crash_exn = None then
            st.st_crash_exn <- Some (Printexc.to_string exn));
      tn.tn_pending <- tn.tn_pending - 1);
  true

let retire st tn =
  if
    tn.tn_crashed || tn.tn_pending > 0
    || Router.in_flight_calls st.st_host.Host.router ~vm_id:tn.tn_vm_id > 0
  then false
  else if Host.retire_cl_vm st.st_host ~vm_id:tn.tn_vm_id then begin
    tn.tn_live <- false;
    st.st_retired <- st.st_retired + 1;
    true
  end
  else false

let migrate st tn dest =
  match st.st_host.Host.pool with
  | Some pool
    when (not tn.tn_crashed)
         && dest >= 0
         && dest < Pool.n_devices pool
         && Pool.is_healthy pool dest ->
      ignore (Pool.migrate_vm pool ~vm_id:tn.tn_vm_id ~dest);
      true
  | _ -> false

let kill st dev =
  match st.st_host.Host.pool with
  | Some pool when dev >= 0 && dev < Pool.n_devices pool -> (
      let healthy =
        List.length
          (List.filter
             (fun d -> Pool.is_healthy pool d)
             (List.init (Pool.n_devices pool) Fun.id))
      in
      match (Pool.is_healthy pool dev, healthy >= 2) with
      | true, true ->
          (* Anyone resident at the instant of loss may legitimately
             surface faults; the isolation invariant holds everyone
             else to a clean run. *)
          List.iter
            (fun vm_id ->
              List.iter
                (fun t -> if t.tn_vm_id = vm_id then t.tn_faulty <- true)
                st.st_tenants)
            (Pool.resident pool dev);
          Pool.kill_device pool ~device:dev;
          true
      | _ -> false)
  | _ -> false

let crash st tn outage_ns =
  if tn.tn_crashed then false
  else
    match current_server st tn.tn_vm_id with
    | Some srv when Option.is_some (Server.vm_ctx srv ~vm_id:tn.tn_vm_id) ->
        let vm_id = tn.tn_vm_id in
        Server.crash srv ~vm_id;
        tn.tn_crashed <- true;
        Engine.schedule_after st.st_engine outage_ns (fun () ->
            tn.tn_crashed <- false;
            (* The tenant may have migrated or retired during the
               outage; only the server still holding its (crashed)
               entry gets the restart. *)
            if
              Option.is_some (Server.vm_ctx srv ~vm_id)
              && Server.is_crashed srv ~vm_id
            then begin
              Server.restart srv ~vm_id;
              ignore
                (Router.requeue_in_flight st.st_host.Host.router ~vm_id)
            end);
        true
    | _ -> false

let swap_pressure st tn n =
  tn.tn_pending <- tn.tn_pending + 1;
  Engine.spawn st.st_engine
    ~name:(Printf.sprintf "campaign-churn-vm%d" tn.tn_vm_id)
    (fun () ->
      (try
         if not (buffer_churn tn.tn_guest.Host.g_api n) then
           tn.tn_bad_result <- true
       with
      | Clutil.Api_failure m -> tn.tn_failures <- m :: tn.tn_failures
      | exn ->
          if st.st_crash_exn = None then
            st.st_crash_exn <- Some (Printexc.to_string exn));
      tn.tn_pending <- tn.tn_pending - 1);
  true

(* Clamp the tenant's device-time quota to a near-zero budget and push
   the reference workload through it: quota enforcement defers at
   admission, so the run must throttle — visibly slower, never wedged,
   rejected or wrong. *)
let quota_exhaust st tn =
  Router.set_quota st.st_host.Host.router ~vm_id:tn.tn_vm_id ~budget:5e3
    ~window_ns:(Time.ms 1);
  submit st tn (Op.Vec_add 64)

(* --- side-silo work (NC / QA) --------------------------------------------- *)

let nc_output_bytes = 16

let nc_ok = function
  | Ok v -> v
  | Error s ->
      raise (Clutil.Api_failure ("mvnc " ^ Ava_simnc.Types.status_to_string s))

let qa_ok = function
  | Ok v -> v
  | Error s ->
      raise (Clutil.Api_failure ("qa " ^ Ava_simqa.Types.status_to_string s))

let nc_host st =
  match st.st_nc_host with
  | Some h -> h
  | None ->
      let h = Host.create_nc_host st.st_engine in
      st.st_nc_host <- Some h;
      h

let qa_host st =
  match st.st_qa_host with
  | Some h -> h
  | None ->
      let h = Host.create_qa_host st.st_engine in
      st.st_qa_host <- Some h;
      h

(* Lazily stand up the tenant's side-silo guest on first use.  Two
   overlapping first submissions may both build a session (setup blocks
   on graph upload); the first to finish wins the slot and the loser's
   guest just idles — wasteful, never wrong. *)
let nc_session st tn =
  match tn.tn_nc with
  | Some s -> s
  | None ->
      let guest =
        Host.add_nc_vm (nc_host st) ~name:(Printf.sprintf "t%d-nc" tn.tn_slot)
      in
      let module NC = (val guest.Host.ng_api) in
      let name = nc_ok (NC.mvncGetDeviceName ~index:0) in
      let d = nc_ok (NC.mvncOpenDevice ~name) in
      let graph_data =
        Ava_simnc.Graphdef.encode
          {
            Ava_simnc.Graphdef.layer_flops = [ 1e6; 2e6 ];
            output_bytes = nc_output_bytes;
          }
      in
      let g = nc_ok (NC.mvncAllocateGraph d ~graph_data) in
      let s = { ns_api = guest.Host.ng_api; ns_graph = g } in
      (match tn.tn_nc with None -> tn.tn_nc <- Some s | Some _ -> ());
      s

let qa_session st tn =
  match tn.tn_qa with
  | Some s -> s
  | None ->
      let guest =
        Host.add_qa_vm (qa_host st) ~name:(Printf.sprintf "t%d-qa" tn.tn_slot)
      in
      let module QA = (val guest.Host.qg_api) in
      let inst = qa_ok (QA.qaStartInstance ~index:0) in
      let cs =
        qa_ok (QA.qaCreateSession inst Ava_simqa.Types.Dir_compress ~level:5)
      in
      let ds =
        qa_ok (QA.qaCreateSession inst Ava_simqa.Types.Dir_decompress ~level:5)
      in
      let s = { qs_api = guest.Host.qg_api; qs_cs = cs; qs_ds = ds } in
      (match tn.tn_qa with None -> tn.tn_qa <- Some s | Some _ -> ());
      s

(* One MVNC inference on the tenant's side-silo guest: queue a tensor,
   wait for the result, check the declared output size. *)
let submit_nc st tn bytes =
  tn.tn_pending <- tn.tn_pending + 1;
  Engine.spawn st.st_engine
    ~name:(Printf.sprintf "campaign-nc-vm%d" tn.tn_vm_id)
    (fun () ->
      (try
         let s = nc_session st tn in
         let module NC = (val s.ns_api) in
         let tensor =
           Bytes.init (max 1 bytes) (fun i -> Char.chr (i land 0xff))
         in
         nc_ok (NC.mvncLoadTensor s.ns_graph ~tensor);
         let out = nc_ok (NC.mvncGetResult s.ns_graph) in
         if Bytes.length out <> nc_output_bytes then tn.tn_bad_result <- true
       with
      | Clutil.Api_failure m -> tn.tn_failures <- m :: tn.tn_failures
      | exn ->
          if st.st_crash_exn = None then
            st.st_crash_exn <- Some (Printexc.to_string exn));
      tn.tn_pending <- tn.tn_pending - 1);
  true

(* One compress/decompress roundtrip; the decompressed payload must be
   byte-identical to the original. *)
let submit_qa st tn kib =
  tn.tn_pending <- tn.tn_pending + 1;
  Engine.spawn st.st_engine
    ~name:(Printf.sprintf "campaign-qa-vm%d" tn.tn_vm_id)
    (fun () ->
      (try
         let s = qa_session st tn in
         let module QA = (val s.qs_api) in
         let payload =
           Bytes.init (1024 * max 1 kib) (fun i -> Char.chr (i * 7 land 0xff))
         in
         let packed = qa_ok (QA.qaCompress s.qs_cs ~src:payload) in
         let back = qa_ok (QA.qaDecompress s.qs_ds ~src:packed) in
         if not (Bytes.equal back payload) then tn.tn_bad_result <- true
       with
      | Clutil.Api_failure m -> tn.tn_failures <- m :: tn.tn_failures
      | exn ->
          if st.st_crash_exn = None then
            st.st_crash_exn <- Some (Printexc.to_string exn));
      tn.tn_pending <- tn.tn_pending - 1);
  true

let flip st profile =
  st.st_profile <- profile;
  List.iter
    (fun t -> Faults.set_config t.tn_faults (profile_config profile))
    st.st_tenants;
  true

let apply st (op : Op.op) =
  if op.Op.delay_ns > 0 then Engine.delay op.Op.delay_ns;
  let applied =
    match op.Op.kind with
    | Op.Admit -> admit st
    | Op.Retire slot -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> retire st tn
        | _ -> false)
    | Op.Submit (slot, w) -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> submit st tn w
        | _ -> false)
    | Op.Migrate (slot, dest) -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> migrate st tn dest
        | _ -> false)
    | Op.Kill_device dev -> kill st dev
    | Op.Rebalance -> (
        match st.st_host.Host.pool with
        | Some pool -> Pool.rebalance_now pool
        | None -> false)
    | Op.Crash (slot, outage_ns) -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> crash st tn outage_ns
        | _ -> false)
    | Op.Flip_faults p -> flip st p
    | Op.Swap_pressure (slot, n) -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> swap_pressure st tn n
        | _ -> false)
    | Op.Quota_exhaust slot -> (
        match tenant st slot with
        | Some tn when tn.tn_live && not tn.tn_crashed ->
            quota_exhaust st tn
        | _ -> false)
    | Op.Submit_nc (slot, n) -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> submit_nc st tn n
        | _ -> false)
    | Op.Submit_qa (slot, k) -> (
        match tenant st slot with
        | Some tn when tn.tn_live -> submit_qa st tn k
        | _ -> false)
  in
  if applied then st.st_applied <- st.st_applied + 1

(* --- invariants ----------------------------------------------------------- *)

(* Residency conservation, cheap enough to run continuously between
   ops: every live tenant resident on exactly one device, and that
   device agrees with the pool's own index. *)
let check_residency_live st =
  match st.st_host.Host.pool with
  | None -> None
  | Some pool ->
      let devices = List.init (Pool.n_devices pool) Fun.id in
      List.find_map
        (fun tn ->
          let homes =
            List.filter
              (fun d -> List.mem tn.tn_vm_id (Pool.resident pool d))
              devices
          in
          match (homes, Pool.device_of pool ~vm_id:tn.tn_vm_id) with
          | [ d ], Some d' when d = d' -> None
          | _ ->
              Some
                (Violation
                   ( Conservation,
                     Printf.sprintf
                       "vm%d resident on %d devices (index says %s)"
                       tn.tn_vm_id (List.length homes)
                       (match Pool.device_of pool ~vm_id:tn.tn_vm_id with
                       | Some d -> string_of_int d
                       | None -> "-") )))
        (live_tenants st)

(* Retired tenants must leave nothing behind: no pool residency, no
   server entry, no IOMMU pins, no recorder. *)
let check_residency_retired st =
  let pool = st.st_host.Host.pool in
  let servers =
    match pool with
    | Some p -> List.init (Pool.n_devices p) (fun d -> Pool.server p d)
    | None -> [ st.st_host.Host.server ]
  in
  List.find_map
    (fun tn ->
      let vm_id = tn.tn_vm_id in
      let leak =
        if
          Option.fold ~none:false
            ~some:(fun p ->
              List.exists
                (fun d -> List.mem vm_id (Pool.resident p d))
                (List.init (Pool.n_devices p) Fun.id))
            pool
        then Some "pool residency"
        else if
          List.exists
            (fun srv -> Option.is_some (Server.vm_ctx srv ~vm_id))
            servers
        then Some "server entry"
        else if Hashtbl.mem st.st_host.Host.iommus vm_id then
          Some "IOMMU pins"
        else if Option.is_some (Host.recorder st.st_host ~vm_id) then
          Some "record log"
        else None
      in
      Option.map
        (fun what ->
          Violation
            ( Residency,
              Printf.sprintf "retired vm%d leaked its %s" vm_id what ))
        leak)
    (List.filter (fun t -> not t.tn_live) st.st_tenants)

let check_seq_ledger st =
  List.find_map
    (fun tn ->
      let inflight =
        Router.in_flight_calls st.st_host.Host.router ~vm_id:tn.tn_vm_id
      in
      if inflight > 0 then
        Some
          (Violation
             ( Seq_ledger,
               Printf.sprintf "vm%d still owes %d replies after quiesce (seqs %s)"
                 tn.tn_vm_id inflight
                 (String.concat ","
                    (List.map string_of_int
                       (Router.in_flight_seqs st.st_host.Host.router
                          ~vm_id:tn.tn_vm_id))) ))
      else
        let gs = Report.guest_stats tn.tn_guest in
        if gs.Report.gs_timeouts > 0 then
          Some
            (Violation
               ( Seq_ledger,
                 Printf.sprintf "vm%d lost %d calls to retry exhaustion"
                   tn.tn_vm_id gs.Report.gs_timeouts ))
        else None)
    (live_tenants st)

let check_conservation st =
  let guests = List.map (fun t -> t.tn_guest) (live_tenants st) in
  let r = Report.snapshot st.st_host guests in
  let dev_sum =
    List.fold_left (fun a d -> a + d.Report.dv_executed) 0 r.Report.r_devices
  in
  if r.Report.r_devices <> [] && dev_sum <> r.Report.r_executed then
    Some
      (Violation
         ( Conservation,
           Printf.sprintf "executed %d != per-device sum %d"
             r.Report.r_executed dev_sum ))
  else
    match st.st_host.Host.pool with
    | Some pool when Pool.retires pool <> st.st_retired ->
        Some
          (Violation
             ( Conservation,
               Printf.sprintf "pool counted %d retires, scenario %d"
                 (Pool.retires pool) st.st_retired ))
    | _ -> check_residency_live st

let check_isolation st =
  List.find_map
    (fun tn ->
      if tn.tn_faulty then None
      else if tn.tn_bad_result then
        Some
          (Violation
             ( Isolation,
               Printf.sprintf "clean vm%d computed wrong sums" tn.tn_vm_id ))
      else
        match tn.tn_failures with
        | [] -> None
        | m :: _ ->
            Some
              (Violation
                 ( Isolation,
                   Printf.sprintf "clean vm%d hit an API failure: %s"
                     tn.tn_vm_id m )))
    st.st_tenants

(* --- the run -------------------------------------------------------------- *)

(* Virtual-time budget for the drain after the last op.  Generous on
   purpose: the full retry schedule of a lost call (12 doubling
   attempts from 20 ms, +25% jitter) must fit, so a stack that heals
   within its design envelope quiesces and one that cannot is reported
   as a hang rather than as a spurious timeout. *)
let quiesce_budget_ns = Time.s 400
let quiesce_tick_ns = Time.ms 5

(* Debug aid for corpus triage: AVA_CAMPAIGN_TRACE=1 arms the host call
   trace and dumps it to stderr after the run.  Never set in CI — the
   trace is for humans staring at a single replay. *)
let debug_trace () = Sys.getenv_opt "AVA_CAMPAIGN_TRACE" <> None

let run ?(obs = false) ?(sabotage = false) config trace =
  let e = Engine.create () in
  let obs_reg = if obs then Some (Obs.create ()) else None in
  let host =
    Host.create_cl_host ~devices:config.sc_devices
      ~placement:config.sc_placement ~sva:config.sc_sva
      ?doorbell:
        (if config.sc_doorbell then Some Transport.default_doorbell else None)
      ~transfer_cache:config.sc_cache
      ~devfaults:
        (make_devfaults (Int64.to_int (Int64.logand config.sc_seed 0xffffffL)))
      ~tdr:Host.default_tdr ~tracing:(debug_trace ()) ?obs:obs_reg e
  in
  let st =
    {
      st_engine = e;
      st_host = host;
      st_config = config;
      st_rng = Rng.create config.sc_seed;
      st_tenants = [];
      st_profile = config.sc_faults;
      st_applied = 0;
      st_crash_exn = None;
      st_retired = 0;
      st_nc_host = None;
      st_qa_host = None;
    }
  in
  let verdict = ref Pass in
  Engine.spawn e ~name:"campaign-driver" (fun () ->
      (try
         List.iter
           (fun op ->
             if !verdict = Pass then begin
               apply st op;
               (* Continuous check: residency must be conserved at
                  every step, not just at quiesce. *)
               match check_residency_live st with
               | Some v -> verdict := v
               | None -> ()
             end)
           trace;
         if sabotage && !verdict = Pass then begin
           (* Self-test: a deliberately broken stack — one tenant's
              worker dies mid-workload and never comes back.  Its call
              exhausts the retry budget; the ledger and isolation
              checks must catch it or the harness is blind. *)
           ignore (admit st);
           match st.st_tenants with
           | tn :: _ ->
               ignore (submit st tn (Op.Vec_add 64));
               Engine.delay (Time.us 50);
               (match current_server st tn.tn_vm_id with
               | Some srv -> Server.crash srv ~vm_id:tn.tn_vm_id
               | None -> ());
               ()
           | [] -> ()
         end;
         (* Quiesce: wait out in-flight work under a virtual deadline;
            a stack that cannot drain is a verdict, not a wedged
            test run. *)
         let deadline = Engine.now e + quiesce_budget_ns in
         let pending () =
           List.exists (fun t -> t.tn_pending > 0) st.st_tenants
         in
         (* The fleet is quiesced only when no submission is running AND
            the router owes no replies.  The second clause matters:
            release calls are fire-and-forget at the stub, so a
            workload can complete while its async tail (a dropped
            release and the calls parked behind it at the server) is
            still healing through retransmission — checking the seq
            ledger at that instant reports a violation that cures
            itself milliseconds later.  A ledger that never drains is
            caught at the deadline by the same check. *)
         let owed () =
           List.exists
             (fun t ->
               t.tn_live
               && Router.in_flight_calls st.st_host.Host.router
                    ~vm_id:t.tn_vm_id
                  > 0)
             st.st_tenants
         in
         while (pending () || owed ()) && Engine.now e < deadline do
           Engine.delay quiesce_tick_ns
         done;
         if !verdict = Pass then
           if pending () then
             verdict :=
               Hang
                 (Printf.sprintf "%d submissions still in flight at deadline"
                    (List.fold_left
                       (fun a t -> a + t.tn_pending)
                       0 st.st_tenants))
           else begin
             (match st.st_host.Host.pool with
             | Some pool -> Pool.stop pool
             | None -> ());
             let checks =
               [
                 (fun () ->
                   Option.map
                     (fun m ->
                       Violation
                         (No_crash, "unexpected exception: " ^ m))
                     st.st_crash_exn);
                 (fun () -> check_seq_ledger st);
                 (fun () -> check_conservation st);
                 (fun () -> check_residency_retired st);
                 (fun () -> check_isolation st);
               ]
             in
             match List.find_map (fun c -> c ()) checks with
             | Some v -> verdict := v
             | None -> ()
           end
       with exn ->
         verdict :=
           Violation
             ( No_crash,
               "driver aborted by exception: " ^ Printexc.to_string exn )))
  ;
  (try Engine.run e
   with exn ->
     if !verdict = Pass then
       verdict :=
         Violation (No_crash, "engine aborted: " ^ Printexc.to_string exn));
  if debug_trace () then
    List.iter
      (fun ev ->
        Printf.eprintf "[%10d] %-8s %s\n" ev.Trace.at ev.Trace.category
          ev.Trace.message)
      (Trace.events host.Host.trace);
  let executed =
    match host.Host.pool with
    | Some pool ->
        List.fold_left
          (fun a d -> a + Server.executed (Pool.server pool d.Pool.ds_id))
          0 (Pool.stats pool)
    | None -> Server.executed host.Host.server
  in
  {
    oc_verdict = !verdict;
    oc_final_ns = Engine.now e;
    oc_executed = executed;
    oc_applied = st.st_applied;
  }

let check_twin config trace =
  let plain = run ~obs:false config trace in
  let armed = run ~obs:true config trace in
  if
    plain.oc_final_ns = armed.oc_final_ns
    && plain.oc_executed = armed.oc_executed
    && plain.oc_verdict = armed.oc_verdict
  then Pass
  else
    Violation
      ( Obs_twin,
        Printf.sprintf
          "disarmed (t=%d, executed=%d) != armed (t=%d, executed=%d)"
          plain.oc_final_ns plain.oc_executed armed.oc_final_ns
          armed.oc_executed )
