lib/simcl/types.ml: Fmt Printf Stdlib
