
/* SimST: the public API of the simulated stream-accelerator silo. */
#define ST_SUCCESS 0

typedef int stStatus;
typedef struct _stStream *stStream;
typedef struct _stEvent *stEvent;
typedef struct _stMem *stMem;

stStatus stDeviceGetCount(int *count);
stStatus stStreamCreate(stStream *stream);
stStatus stStreamDestroy(stStream stream);
stStatus stStreamSynchronize(stStream stream);
stStatus stEventCreate(stEvent *event);
stStatus stEventDestroy(stEvent event);
stStatus stEventRecord(stEvent event, stStream stream);
stStatus stEventSynchronize(stEvent event);
stStatus stStreamWaitEvent(stStream stream, stEvent event);
stStatus stMemAlloc(stMem *mem, unsigned int size);
stStatus stMemFree(stMem mem);
stStatus stMemcpyHtoDAsync(stMem dst, const void *src, unsigned int size, stStream stream);
stStatus stMemcpyDtoH(void *dst, unsigned int size, stMem src);
stStatus stLaunchKernel(stStream stream, const char *name, unsigned int name_size, stMem a, stMem b, stMem out, unsigned int n);
stStatus stBatchSubmit(stStream stream, const void *batch, unsigned int batch_size, unsigned int item_size, int *ticket);
stStatus stBatchCollect(stStream stream, int ticket, void *scores, unsigned int scores_size);
