(* The AvA-generated API server dispatch for SimST.

   The stream silo's server half: one wire value per C parameter in
   declaration order, guest virtual ids resolved through the per-VM
   context, object-creating calls binding fresh ids.  Stream ordering
   itself lives in the device model — the handlers just call the native
   API, exactly as generated dispatch would. *)

module Wire = Ava_remoting.Wire
module Server = Ava_remoting.Server

open Ava_simst.Types
open Codec

type state = {
  api : (module Ava_simst.Api.S);
  native : Ava_simst.Native.st;
}

let make_state dev ~vm_id:_ =
  let api, native = Ava_simst.Native.create dev in
  { api; native }

let err (s : status) : int * Wire.value * Wire.value list =
  (status_to_code s, Wire.Unit, [])

let ok_unit = (0, Wire.Unit, [])
let ok_ret ret outs = (0, ret, outs)

exception Unknown_handle = Server.Unknown_handle

let resolve ctx v =
  match Server.Ctx.resolve ctx v with
  | Some h -> h
  | None -> raise Unknown_handle

let guard f ctx st args =
  match f ctx st args with
  | result -> result
  | exception Unknown_handle -> (Server.status_unknown_handle, Wire.Unit, [])
  | exception Bad_args -> (Server.status_bad_arguments, Wire.Unit, [])

let of_result r k = match r with Ok v -> k v | Error e -> err e

let bind_fresh ctx ~host =
  let vid = Server.Ctx.fresh ctx in
  Server.Ctx.bind ctx ~guest:vid ~host;
  vid

let register server =
  let reg name f = Server.register server name (guard f) in

  reg "stDeviceGetCount" (fun _ctx st args ->
      match args with
      | [ _out ] ->
          let module ST = (val st.api) in
          of_result (ST.stDeviceGetCount ()) (fun n -> ok_ret (i 0) [ i n ])
      | _ -> raise Bad_args);

  (* Object-creating calls: the server mints the virtual id the guest
     will use from now on. *)
  let creator name f =
    reg name (fun ctx st args ->
        match args with
        | [ _out ] ->
            let module ST = (val st.api) in
            of_result (f (module ST : Ava_simst.Api.S)) (fun host ->
                ok_ret (h (bind_fresh ctx ~host)) [])
        | _ -> raise Bad_args)
  in
  creator "stStreamCreate" (fun (module ST) -> ST.stStreamCreate ());
  creator "stEventCreate" (fun (module ST) -> ST.stEventCreate ());

  (* One-handle calls share a shape: resolve, call, unit reply. *)
  let one_handle name f =
    reg name (fun ctx st args ->
        match args with
        | [ v ] ->
            let module ST = (val st.api) in
            of_result
              (f (module ST : Ava_simst.Api.S) (resolve ctx (to_h v)))
              (fun () -> ok_unit)
        | _ -> raise Bad_args)
  in
  one_handle "stStreamDestroy" (fun (module ST) s -> ST.stStreamDestroy s);
  one_handle "stStreamSynchronize" (fun (module ST) s ->
      ST.stStreamSynchronize s);
  one_handle "stEventDestroy" (fun (module ST) e -> ST.stEventDestroy e);
  one_handle "stEventSynchronize" (fun (module ST) e ->
      ST.stEventSynchronize e);
  one_handle "stMemFree" (fun (module ST) m -> ST.stMemFree m);

  reg "stEventRecord" (fun ctx st args ->
      match args with
      | [ ev; s ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stEventRecord (resolve ctx (to_h ev)) (resolve ctx (to_h s)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "stStreamWaitEvent" (fun ctx st args ->
      match args with
      | [ s; ev ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stStreamWaitEvent (resolve ctx (to_h s))
               (resolve ctx (to_h ev)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "stMemAlloc" (fun ctx st args ->
      match args with
      | [ _out; size ] ->
          let module ST = (val st.api) in
          of_result (ST.stMemAlloc ~size:(to_i size)) (fun host ->
              ok_ret (h (bind_fresh ctx ~host)) [])
      | _ -> raise Bad_args);

  reg "stMemcpyHtoDAsync" (fun ctx st args ->
      match args with
      | [ dst; src; _size; s ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stMemcpyHtoDAsync (resolve ctx (to_h dst)) ~src:(to_b src)
               (resolve ctx (to_h s)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "stMemcpyDtoH" (fun ctx st args ->
      match args with
      | [ _out; size; src ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stMemcpyDtoH ~size:(to_i size) (resolve ctx (to_h src)))
            (fun data -> ok_ret (i 0) [ b data ])
      | _ -> raise Bad_args);

  reg "stLaunchKernel" (fun ctx st args ->
      match args with
      | [ s; name; _name_size; a; bm; out; n ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stLaunchKernel (resolve ctx (to_h s))
               ~name:(Bytes.to_string (to_b name))
               ~a:(resolve ctx (to_h a))
               ~b:(resolve ctx (to_h bm))
               ~out:(resolve ctx (to_h out))
               ~n:(to_i n))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "stBatchSubmit" (fun ctx st args ->
      match args with
      | [ s; batch; _batch_size; item_size; _out ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stBatchSubmit (resolve ctx (to_h s)) ~batch:(to_b batch)
               ~item_size:(to_i item_size))
            (fun ticket -> ok_ret (i 0) [ i ticket ])
      | _ -> raise Bad_args);

  reg "stBatchCollect" (fun ctx st args ->
      match args with
      | [ s; ticket; _out; size ] ->
          let module ST = (val st.api) in
          of_result
            (ST.stBatchCollect (resolve ctx (to_h s)) ~ticket:(to_i ticket)
               ~size:(to_i size))
            (fun scores -> ok_ret (i 0) [ b scores ])
      | _ -> raise Bad_args)
