lib/workloads/inception.ml: Ava_simnc Bytes List
