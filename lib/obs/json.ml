(* Minimal JSON tree, printer and recursive-descent parser.

   The switch has no JSON library, and the perf gate must read bench
   output and baselines back in, so we keep a small self-contained
   implementation here.  Printing is deterministic (object members in
   insertion order, floats via %.17g trimmed) which the golden tests
   rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {1 Accessors} *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

(* {1 Printing} *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* NaN / infinities are not valid JSON; emit null. *)
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

(* Pretty printer: 2-space indent, used for human-facing BENCH files. *)
let rec write_pretty b indent = function
  | List ((_ :: _) as items) ->
      let pad = String.make indent ' ' in
      let pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          write_pretty b (indent + 2) v)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b ']'
  | Obj ((_ :: _) as fields) ->
      let pad = String.make indent ' ' in
      let pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          write_pretty b (indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'
  | v -> write b v

let to_string_pretty v =
  let b = Buffer.create 4096 in
  write_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* {1 Parsing} *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur word v =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    v
  end
  else error cur (Printf.sprintf "expected '%s'" word)

let parse_string_raw cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' -> advance cur; Buffer.add_char b '\n'; loop ()
        | Some 't' -> advance cur; Buffer.add_char b '\t'; loop ()
        | Some 'r' -> advance cur; Buffer.add_char b '\r'; loop ()
        | Some 'b' -> advance cur; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance cur; Buffer.add_char b '\012'; loop ()
        | Some '/' -> advance cur; Buffer.add_char b '/'; loop ()
        | Some '"' -> advance cur; Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance cur; Buffer.add_char b '\\'; loop ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then
              error cur "truncated \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error cur "bad \\u escape"
            in
            (* Encode the code point as UTF-8 (BMP only — enough for
               the ASCII control escapes we emit ourselves). *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> error cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek cur with Some c when is_num_char c -> true | _ -> false
  do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  if s = "" then error cur "expected number";
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_raw cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> error cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws cur;
          let k = parse_string_raw cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((k, v) :: acc)
          | _ -> error cur "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some _ -> parse_number cur

let parse s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then error cur "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None
