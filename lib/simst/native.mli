(** Native SimST stack over the simulated stream accelerator; one
    instance per host process, as with the other silos. *)

type st
(** Instance state (opaque). *)

val create : Device.t -> (module Api.S) * st

val calls : st -> int
val device : st -> Device.t
val live_streams : st -> int
val live_mems : st -> int

val find_mem : st -> Types.mem_handle -> Bytes.t option
(** Device storage behind an API memory handle — the migration
    snapshot's view. *)

val quiesce : st -> unit
(** Drain every stream; a migration must quiesce before snapshotting. *)
