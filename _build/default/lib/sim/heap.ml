(* Array-based binary min-heap keyed by (time, sequence-number).

   The sequence number breaks ties so that events scheduled for the same
   instant fire in insertion order, which keeps the whole simulation
   deterministic. *)

type 'a entry = { key : int; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let size t = t.size
let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let dummy = t.data.(0) in
  let ndata = Array.make ncap dummy in
  Array.blit t.data 0 ndata 0 t.size;
  t.data <- ndata

let add t ~key ~seq payload =
  let e = { key; seq; payload } in
  if t.size = Array.length t.data then
    if t.size = 0 then t.data <- Array.make 16 e else grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(parent) in
    t.data.(parent) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := parent
  done

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some top
  end
