(** Log-bucketed latency histogram (powers-of-two bounds in ns).

    Buckets: [0,1], (1,2], (2,4], ... (2^39,2^40], plus an overflow
    bucket above 2^40 ns.  Adding a sample is allocation-free;
    quantiles are estimated by linear interpolation inside the bucket
    containing the target rank, clamped to the observed min/max. *)

type t

val n_finite : int
(** Number of finite buckets (41: upper bounds 2^0 .. 2^40). *)

val n_buckets : int
(** Total bucket count including the overflow bucket. *)

val bound : int -> int
(** [bound i] is the inclusive upper bound (ns) of finite bucket [i].
    @raise Invalid_argument outside [0, n_finite). *)

val bucket_index : int -> int
(** Index of the bucket a sample lands in (negative samples clamp to 0;
    values above the last finite bound land in the overflow bucket). *)

val create : unit -> t
val add : t -> int -> unit

val count : t -> int
val sum : t -> float
val min_value : t -> int
val max_value : t -> int

val bucket_counts : t -> int array
(** Copy of the per-bucket counts; index [n_finite] is overflow. *)

val merge : into:t -> t -> unit

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]; [nan] on an empty histogram.
    @raise Invalid_argument if [q] is outside [0,1]. *)

type summary = {
  h_count : int;
  h_sum_ns : float;
  h_mean_ns : float;
  h_min_ns : float;
  h_max_ns : float;
  h_p50_ns : float;
  h_p95_ns : float;
  h_p99_ns : float;
}

val empty_summary : summary
val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit
