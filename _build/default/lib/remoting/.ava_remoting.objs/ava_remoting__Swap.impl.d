lib/remoting/swap.ml: Hashtbl
