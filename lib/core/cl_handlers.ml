(* The AvA-generated API server dispatch for SimCL.

   Each handler unmarshals one function's arguments (layout mirrors
   {!Cl_remote}), resolves virtual ids through the per-VM context, runs
   the call against that VM's private native SimCL instance (process
   isolation), and marshals the reply.

   Optional buffer-granularity swapping (§4.3) hooks allocation, use and
   release of memory objects. *)

module Wire = Ava_remoting.Wire
module Server = Ava_remoting.Server
module Swap = Ava_remoting.Swap

open Ava_simcl.Types
open Codec

type state = {
  api : (module Ava_simcl.Api.S);
  native : Ava_simcl.Native.st;
  swap : Swap.t option;
}

(* Thread the VM id down to the device layer as the submitting client, so
   per-client fault targeting (and TDR blame) can tell tenants apart. *)
let make_state ?swap kd ~vm_id =
  let api, native = Ava_simcl.Native.create ~client:vm_id kd in
  { api; native; swap }

(* Reply helpers. *)
let err e : int * Wire.value * Wire.value list =
  (error_to_code e, Wire.Unit, [])

let ok_unit = (0, Wire.Unit, [])
let ok_ret ret outs = (0, ret, outs)

let unknown_handle = (Server.status_unknown_handle, Wire.Unit, [])

exception Unknown_handle = Server.Unknown_handle

let resolve ctx v =
  match Server.Ctx.resolve ctx v with
  | Some h -> h
  | None -> raise Unknown_handle

let resolve_list ctx vs = List.map (resolve ctx) vs

(* Wrap a handler body: argument/handle failures become statuses, never
   exceptions escaping into the server core. *)
let guard f ctx st args =
  match f ctx st args with
  | result -> result
  | exception Unknown_handle -> unknown_handle
  | exception Bad_args -> (Server.status_bad_arguments, Wire.Unit, [])

let of_result r k = match r with Ok v -> k v | Error e -> err e

(* Swap keys combine VM id and host handle so one manager can serve all
   VMs sharing the device. *)
let swap_key ctx host = (Server.Ctx.vm ctx * 1_000_000) + host

let swap_add ctx st ~host ~bytes =
  match st.swap with
  | None -> ()
  | Some sw -> (
      match Swap.add sw ~key:(swap_key ctx host) ~bytes with
      | Ok () | Error `Too_big -> ())

let swap_touch ctx st host =
  match st.swap with
  | None -> ()
  | Some sw -> ignore (Swap.touch sw ~key:(swap_key ctx host))

let swap_remove ctx st host =
  match st.swap with
  | None -> ()
  | Some sw -> Swap.remove sw ~key:(swap_key ctx host)

(* Bind a freshly created host object to a new virtual id. *)
let bind_fresh ctx ~host =
  let vid = Server.Ctx.fresh ctx in
  Server.Ctx.bind ctx ~guest:vid ~host;
  vid

let register server =
  let reg name f = Server.register server name (guard f) in

  (* --- platform / device ----------------------------------------------- *)
  reg "clGetPlatformIDs" (fun _ctx st args ->
      match args with
      | [ _n; _; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetPlatformIDs ()) (fun ps ->
              ok_ret (i 0) [ l ps; i (List.length ps) ])
      | _ -> raise Bad_args);

  reg "clGetPlatformInfo" (fun _ctx st args ->
      match args with
      | [ p; pn; _vs; _ ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clGetPlatformInfo (to_h p) (platform_info_of_int (to_i pn)))
            (fun str -> ok_ret (i 0) [ b (Bytes.of_string str) ])
      | _ -> raise Bad_args);

  reg "clGetDeviceIDs" (fun _ctx st args ->
      match args with
      | [ p; ty; _ne; _; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetDeviceIDs (to_h p) (device_type_of_int (to_i ty)))
            (fun ds -> ok_ret (i 0) [ l ds; i (List.length ds) ])
      | _ -> raise Bad_args);

  reg "clGetDeviceInfo" (fun _ctx st args ->
      match args with
      | [ d; pn; _vs; _ ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clGetDeviceInfo (to_h d) (device_info_of_int (to_i pn)))
            (fun info -> ok_ret (i 0) [ b (encode_info info) ])
      | _ -> raise Bad_args);

  (* --- contexts ---------------------------------------------------------- *)
  reg "clCreateContext" (fun ctx st args ->
      match args with
      | [ devs; _n; _err ] ->
          let module CL = (val st.api) in
          of_result (CL.clCreateContext (resolve_list ctx (to_l devs)))
            (fun host -> ok_ret (h (bind_fresh ctx ~host)) [ i 0 ])
      | _ -> raise Bad_args);

  reg "clRetainContext" (fun ctx st args ->
      match args with
      | [ c ] ->
          let module CL = (val st.api) in
          of_result (CL.clRetainContext (resolve ctx (to_h c))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  reg "clReleaseContext" (fun ctx st args ->
      match args with
      | [ c ] ->
          let module CL = (val st.api) in
          of_result (CL.clReleaseContext (resolve ctx (to_h c))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  reg "clGetContextInfo" (fun ctx st args ->
      match args with
      | [ c; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetContextInfo (resolve ctx (to_h c))) (fun refs ->
              ok_ret (i 0) [ i refs ])
      | _ -> raise Bad_args);

  (* --- command queues ----------------------------------------------------- *)
  reg "clCreateCommandQueue" (fun ctx st args ->
      match args with
      | [ c; d; props; _err ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clCreateCommandQueue (resolve ctx (to_h c))
               (resolve ctx (to_h d))
               ~profiling:(to_i props land 2 <> 0))
            (fun host -> ok_ret (h (bind_fresh ctx ~host)) [ i 0 ])
      | _ -> raise Bad_args);

  reg "clRetainCommandQueue" (fun ctx st args ->
      match args with
      | [ q ] ->
          let module CL = (val st.api) in
          of_result (CL.clRetainCommandQueue (resolve ctx (to_h q)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "clReleaseCommandQueue" (fun ctx st args ->
      match args with
      | [ q ] ->
          let module CL = (val st.api) in
          of_result (CL.clReleaseCommandQueue (resolve ctx (to_h q)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "clGetCommandQueueInfo" (fun ctx st args ->
      match args with
      | [ q; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetCommandQueueInfo (resolve ctx (to_h q)))
            (fun host_ctx ->
              match Server.Ctx.reverse ctx ~host:host_ctx with
              | Some vid -> ok_ret (i 0) [ h vid ]
              | None -> ok_ret (i 0) [ h host_ctx ])
      | _ -> raise Bad_args);

  (* --- memory objects ------------------------------------------------------ *)
  reg "clCreateBuffer" (fun ctx st args ->
      match args with
      | [ c; _flags; size; _err ] ->
          let module CL = (val st.api) in
          of_result (CL.clCreateBuffer (resolve ctx (to_h c)) ~size:(to_i size))
            (fun host ->
              swap_add ctx st ~host ~bytes:(to_i size);
              ok_ret (h (bind_fresh ctx ~host)) [ i 0 ])
      | _ -> raise Bad_args);

  reg "clRetainMemObject" (fun ctx st args ->
      match args with
      | [ m ] ->
          let module CL = (val st.api) in
          of_result (CL.clRetainMemObject (resolve ctx (to_h m))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  reg "clReleaseMemObject" (fun ctx st args ->
      match args with
      | [ m ] ->
          let module CL = (val st.api) in
          let host = resolve ctx (to_h m) in
          of_result (CL.clReleaseMemObject host) (fun () ->
              swap_remove ctx st host;
              ok_unit)
      | _ -> raise Bad_args);

  reg "clGetMemObjectInfo" (fun ctx st args ->
      match args with
      | [ m; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetMemObjectInfo (resolve ctx (to_h m)))
            (fun size -> ok_ret (i 0) [ i size ])
      | _ -> raise Bad_args);

  (* --- programs -------------------------------------------------------------- *)
  reg "clCreateProgramWithSource" (fun ctx st args ->
      match args with
      | [ c; src; _len; _err ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clCreateProgramWithSource (resolve ctx (to_h c))
               ~source:(Bytes.to_string (to_b src)))
            (fun host -> ok_ret (h (bind_fresh ctx ~host)) [ i 0 ])
      | _ -> raise Bad_args);

  reg "clBuildProgram" (fun ctx st args ->
      match args with
      | [ p; opts; _len ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clBuildProgram (resolve ctx (to_h p))
               ~options:(Bytes.to_string (to_b opts)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "clGetProgramBuildInfo" (fun ctx st args ->
      match args with
      | [ p; _vs; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetProgramBuildInfo (resolve ctx (to_h p)))
            (fun log -> ok_ret (i 0) [ b (Bytes.of_string log) ])
      | _ -> raise Bad_args);

  reg "clRetainProgram" (fun ctx st args ->
      match args with
      | [ p ] ->
          let module CL = (val st.api) in
          of_result (CL.clRetainProgram (resolve ctx (to_h p))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  reg "clReleaseProgram" (fun ctx st args ->
      match args with
      | [ p ] ->
          let module CL = (val st.api) in
          of_result (CL.clReleaseProgram (resolve ctx (to_h p))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  (* --- kernels ------------------------------------------------------------------ *)
  reg "clCreateKernel" (fun ctx st args ->
      match args with
      | [ p; name; _len; _err ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clCreateKernel (resolve ctx (to_h p))
               ~name:(Bytes.to_string (to_b name)))
            (fun host -> ok_ret (h (bind_fresh ctx ~host)) [ i 0 ])
      | _ -> raise Bad_args);

  reg "clRetainKernel" (fun ctx st args ->
      match args with
      | [ k ] ->
          let module CL = (val st.api) in
          of_result (CL.clRetainKernel (resolve ctx (to_h k))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  reg "clReleaseKernel" (fun ctx st args ->
      match args with
      | [ k ] ->
          let module CL = (val st.api) in
          of_result (CL.clReleaseKernel (resolve ctx (to_h k))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args);

  reg "clSetKernelArg" (fun ctx st args ->
      match args with
      | [ k; idx; _size; payload ] ->
          let module CL = (val st.api) in
          let arg =
            match decode_kernel_arg (to_b payload) with
            | `Mem vid ->
                let host = resolve ctx vid in
                swap_touch ctx st host;
                Arg_mem host
            | `Int v -> Arg_int v
            | `Float f -> Arg_float f
            | `Local n -> Arg_local n
          in
          of_result
            (CL.clSetKernelArg (resolve ctx (to_h k)) ~index:(to_i idx) arg)
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "clGetKernelInfo" (fun ctx st args ->
      match args with
      | [ k; _vs; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetKernelInfo (resolve ctx (to_h k))) (fun name ->
              ok_ret (i 0) [ b (Bytes.of_string name) ])
      | _ -> raise Bad_args);

  reg "clGetKernelWorkGroupInfo" (fun ctx st args ->
      match args with
      | [ k; d; _ ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clGetKernelWorkGroupInfo (resolve ctx (to_h k))
               (resolve ctx (to_h d)))
            (fun wg -> ok_ret (i 0) [ i wg ])
      | _ -> raise Bad_args);

  (* --- enqueue operations ----------------------------------------------------------- *)
  let bind_event ctx ev_arg host_ev =
    match (ev_arg, host_ev) with
    | Wire.Handle gid, Some hev ->
        Server.Ctx.bind ctx ~guest:(Int64.to_int gid) ~host:hev
    | Wire.Unit, _ | _, None -> ()
    | _ -> raise Bad_args
  in
  let want_event = function
    | Wire.Handle _ -> true
    | Wire.Unit -> false
    | _ -> raise Bad_args
  in

  reg "clEnqueueNDRangeKernel" (fun ctx st args ->
      match args with
      | [ q; k; gws; lws; _nwl; wl; ev ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clEnqueueNDRangeKernel (resolve ctx (to_h q))
               (resolve ctx (to_h k))
               ~global_work_size:(to_i gws) ~local_work_size:(to_i lws)
               ~wait_list:(resolve_list ctx (to_l wl))
               ~want_event:(want_event ev))
            (fun host_ev ->
              bind_event ctx ev host_ev;
              ok_unit)
      | _ -> raise Bad_args);

  reg "clEnqueueTask" (fun ctx st args ->
      match args with
      | [ q; k; _nwl; wl; ev ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clEnqueueTask (resolve ctx (to_h q)) (resolve ctx (to_h k))
               ~wait_list:(resolve_list ctx (to_l wl))
               ~want_event:(want_event ev))
            (fun host_ev ->
              bind_event ctx ev host_ev;
              ok_unit)
      | _ -> raise Bad_args);

  reg "clEnqueueReadBuffer" (fun ctx st args ->
      match args with
      | [ q; m; _blocking; off; size; _ptr; _nwl; wl; ev ] ->
          let module CL = (val st.api) in
          let host_m = resolve ctx (to_h m) in
          swap_touch ctx st host_m;
          (* Execute blocking regardless: the reply must carry the data.
             The guest still gets the asynchronous-forwarding win — it
             did not wait for this execution. *)
          of_result
            (CL.clEnqueueReadBuffer (resolve ctx (to_h q)) host_m
               ~blocking:true ~offset:(to_i off) ~size:(to_i size)
               ~wait_list:(resolve_list ctx (to_l wl))
               ~want_event:(want_event ev))
            (fun (data, host_ev) ->
              bind_event ctx ev host_ev;
              ok_ret (i 0) [ b data ])
      | _ -> raise Bad_args);

  reg "clEnqueueWriteBuffer" (fun ctx st args ->
      match args with
      | [ q; m; blocking; off; _size; data; _nwl; wl; ev ] ->
          let module CL = (val st.api) in
          let host_m = resolve ctx (to_h m) in
          swap_touch ctx st host_m;
          of_result
            (CL.clEnqueueWriteBuffer (resolve ctx (to_h q)) host_m
               ~blocking:(to_i blocking = 1)
               ~offset:(to_i off) ~src:(to_b data)
               ~wait_list:(resolve_list ctx (to_l wl))
               ~want_event:(want_event ev))
            (fun host_ev ->
              bind_event ctx ev host_ev;
              ok_unit)
      | _ -> raise Bad_args);

  reg "clEnqueueCopyBuffer" (fun ctx st args ->
      match args with
      | [ q; src; dst; soff; doff; size; _nwl; wl; ev ] ->
          let module CL = (val st.api) in
          let host_src = resolve ctx (to_h src) in
          let host_dst = resolve ctx (to_h dst) in
          swap_touch ctx st host_src;
          swap_touch ctx st host_dst;
          of_result
            (CL.clEnqueueCopyBuffer (resolve ctx (to_h q)) ~src:host_src
               ~dst:host_dst ~src_offset:(to_i soff) ~dst_offset:(to_i doff)
               ~size:(to_i size)
               ~wait_list:(resolve_list ctx (to_l wl))
               ~want_event:(want_event ev))
            (fun host_ev ->
              bind_event ctx ev host_ev;
              ok_unit)
      | _ -> raise Bad_args);

  reg "clEnqueueFillBuffer" (fun ctx st args ->
      match args with
      | [ q; m; pattern; off; size; _nwl; wl; ev ] ->
          let module CL = (val st.api) in
          let host_m = resolve ctx (to_h m) in
          swap_touch ctx st host_m;
          of_result
            (CL.clEnqueueFillBuffer (resolve ctx (to_h q)) host_m
               ~pattern:(Char.chr (to_i pattern land 0xff))
               ~offset:(to_i off) ~size:(to_i size)
               ~wait_list:(resolve_list ctx (to_l wl))
               ~want_event:(want_event ev))
            (fun host_ev ->
              bind_event ctx ev host_ev;
              ok_unit)
      | _ -> raise Bad_args);

  (* --- synchronization ----------------------------------------------------------------- *)
  reg "clFlush" (fun ctx st args ->
      match args with
      | [ q ] ->
          let module CL = (val st.api) in
          of_result (CL.clFlush (resolve ctx (to_h q))) (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "clFinish" (fun ctx st args ->
      match args with
      | [ q ] ->
          let module CL = (val st.api) in
          of_result (CL.clFinish (resolve ctx (to_h q))) (fun () -> ok_unit)
      | _ -> raise Bad_args);

  reg "clWaitForEvents" (fun ctx st args ->
      match args with
      | [ _n; evs ] ->
          let module CL = (val st.api) in
          of_result (CL.clWaitForEvents (resolve_list ctx (to_l evs)))
            (fun () -> ok_unit)
      | _ -> raise Bad_args);

  (* --- events ------------------------------------------------------------------------------ *)
  reg "clGetEventInfo" (fun ctx st args ->
      match args with
      | [ ev; _ ] ->
          let module CL = (val st.api) in
          of_result (CL.clGetEventInfo (resolve ctx (to_h ev))) (fun status ->
              ok_ret (i 0) [ i (event_status_to_int status) ])
      | _ -> raise Bad_args);

  reg "clGetEventProfilingInfo" (fun ctx st args ->
      match args with
      | [ ev; pn; _ ] ->
          let module CL = (val st.api) in
          of_result
            (CL.clGetEventProfilingInfo (resolve ctx (to_h ev))
               (profiling_info_of_int (to_i pn)))
            (fun v -> ok_ret (i 0) [ i v ])
      | _ -> raise Bad_args);

  reg "clReleaseEvent" (fun ctx st args ->
      match args with
      | [ ev ] ->
          let module CL = (val st.api) in
          of_result (CL.clReleaseEvent (resolve ctx (to_h ev))) (fun () ->
              ok_unit)
      | _ -> raise Bad_args)
