examples/disaggregated.ml: Ava_core Ava_sim Ava_transport Ava_workloads Driver Fmt Host List Option Rodinia Time
