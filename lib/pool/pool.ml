(* The device pool: N simulated GPUs, each fronted by its own API
   server and router dispatch lane, with placement of remoted VMs onto
   backends and migration-driven rebalancing on top.

   The pool is generic over the silo state ['st]: everything
   API-specific — snapshotting live buffers, replaying the record log
   onto the destination silo, restoring contents — is injected as the
   [transfer] closure by the stack-assembly layer.  What lives here is
   the orchestration: placement policies, the pause/drain/attach/
   re-steer migration sequence, device-loss evacuation with blame
   routing, and the periodic skew monitor. *)

module Server = Ava_remoting.Server
module Router = Ava_remoting.Router
module Transport = Ava_transport.Transport

open Ava_sim
open Ava_device
open Ava_hv

let trace_category = "pool"

(* Placement policies for newly attached (or evacuated) VMs. *)
type placement =
  | Round_robin  (** rotate over healthy devices *)
  | Least_loaded  (** least accumulated estimated device time *)
  | Bin_pack  (** best-fit on declared buffer footprint *)

let placement_to_string = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Bin_pack -> "bin-pack"

let placement_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "bin-pack" | "bp" -> Some Bin_pack
  | _ -> None

(* Skew monitor configuration: every [rb_interval], migrate one VM off
   the hottest device when its load exceeds [rb_skew] times the healthy
   average. *)
type rebalance = { rb_interval : Time.t; rb_skew : float }

let default_rebalance = { rb_interval = Time.ms 5; rb_skew = 1.5 }

(* What a device can do.  A heterogeneous fleet mixes capabilities; a
   VM either requires one (its silo state only replays onto a same-type
   device) or is portable across the fleet. *)
type capability = Cap_gpu | Cap_npu | Cap_stream

let capability_to_string = function
  | Cap_gpu -> "gpu"
  | Cap_npu -> "npu"
  | Cap_stream -> "stream"

let capability_of_string = function
  | "gpu" -> Some Cap_gpu
  | "npu" -> Some Cap_npu
  | "stream" -> Some Cap_stream
  | _ -> None

(* The pool's view of one physical accelerator: capability tag plus the
   handful of read-outs and controls the orchestration needs, as
   closures so any device model can sit behind a lane.  [ph_gpu] keeps
   the concrete GPU reachable for the OpenCL-specific callers. *)
type phys = {
  ph_cap : capability;
  ph_busy_ns : unit -> Time.t;
  ph_kernels : unit -> int;
  ph_capacity : int;  (** device-memory capacity, bytes *)
  ph_wedged_by : unit -> int option;
  ph_kill : unit -> unit;
  ph_gpu : Gpu.t option;
}

let phys_of_gpu gpu =
  {
    ph_cap = Cap_gpu;
    ph_busy_ns = (fun () -> Gpu.busy_ns gpu);
    ph_kernels = (fun () -> Gpu.kernels_executed gpu);
    ph_capacity = Devmem.capacity (Gpu.mem gpu);
    ph_wedged_by = (fun () -> Gpu.wedged_by gpu);
    ph_kill = (fun () -> Gpu.kill gpu);
    ph_gpu = Some gpu;
  }

type 'st device = {
  dev_id : int;
  dev_phys : phys;
  dev_server : 'st Server.t;
  mutable dev_healthy : bool;
  mutable dev_resident : int list;  (** vm ids, unordered *)
  mutable dev_evac_in : int;
  mutable dev_evac_out : int;
}

type vm_info = {
  vi_vm : Vm.t;
  vi_footprint : int;  (** declared device-memory footprint, bytes *)
  vi_requires : capability option;  (** [None]: portable across the fleet *)
  mutable vi_device : int;
  mutable vi_migrating : bool;
      (** a migration of this VM is between pause and re-steer *)
}

(* Can this device host a VM with this requirement? *)
let compatible requires (d : 'st device) =
  match requires with None -> true | Some c -> d.dev_phys.ph_cap = c

type 'st t = {
  engine : Engine.t;
  router : Router.t;
  placement : placement;
  devices : 'st device array;
  transfer : vm_id:int -> src:int -> dst:int -> int;
      (** API-specific silo copy; returns bytes moved *)
  drain_ns : Time.t;
  trace : Trace.t option;
  mutable vms : (int * vm_info) list;
  mutable rr_cursor : int;
  mutable migrations : int;
  mutable evacuations : int;
  mutable rebalances : int;
  mutable retires : int;
  mutable aborted_migrations : int;
      (** migrations whose VM retired during the drain window *)
  mutable emigrations : int;
      (** VMs handed off to another host's pool by the cluster tier *)
  mutable stopped : bool;  (** quiesces the skew monitor *)
}

let record_trace t fmt =
  match t.trace with
  | Some tr when Trace.is_enabled tr ->
      Trace.record tr ~at:(Engine.now t.engine) ~category:trace_category fmt
  | _ -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let create_het ?trace ?(drain_ns = Time.us 200) engine ~router ~placement
    ~transfer devices =
  if devices = [] then invalid_arg "Pool.create: no devices";
  let devices =
    Array.of_list
      (List.mapi
         (fun i (phys, server) ->
           {
             dev_id = i;
             dev_phys = phys;
             dev_server = server;
             dev_healthy = true;
             dev_resident = [];
             dev_evac_in = 0;
             dev_evac_out = 0;
           })
         devices)
  in
  (* Lane 0 exists from Router.create; register the rest. *)
  Array.iter
    (fun d -> if d.dev_id > 0 then Router.add_backend router ~id:d.dev_id)
    devices;
  {
    engine;
    router;
    placement;
    devices;
    transfer;
    drain_ns;
    trace;
    vms = [];
    rr_cursor = 0;
    migrations = 0;
    evacuations = 0;
    rebalances = 0;
    retires = 0;
    aborted_migrations = 0;
    emigrations = 0;
    stopped = false;
  }

(* The homogeneous entry point: a fleet of GPUs, as before. *)
let create ?trace ?drain_ns engine ~router ~placement ~transfer devices =
  create_het ?trace ?drain_ns engine ~router ~placement ~transfer
    (List.map (fun (gpu, server) -> (phys_of_gpu gpu, server)) devices)

(* {1 Read-out} *)

let n_devices t = Array.length t.devices
let placement t = t.placement
let migrations t = t.migrations
let evacuations t = t.evacuations
let rebalances t = t.rebalances
let retires t = t.retires
let aborted_migrations t = t.aborted_migrations
let emigrations t = t.emigrations

let footprint_of t ~vm_id =
  Option.map (fun i -> i.vi_footprint) (List.assoc_opt vm_id t.vms)

let requires_of t ~vm_id =
  Option.bind (List.assoc_opt vm_id t.vms) (fun i -> i.vi_requires)

let vm_of t ~vm_id =
  Option.map (fun i -> i.vi_vm) (List.assoc_opt vm_id t.vms)

let device t i =
  if i < 0 || i >= Array.length t.devices then
    invalid_arg (Printf.sprintf "Pool.device: no device %d" i);
  t.devices.(i)

let gpu t i =
  match (device t i).dev_phys.ph_gpu with
  | Some g -> g
  | None ->
      invalid_arg
        (Printf.sprintf "Pool.gpu: device %d is a %s, not a GPU" i
           (capability_to_string (device t i).dev_phys.ph_cap))

let capability t i = (device t i).dev_phys.ph_cap
let server t i = (device t i).dev_server
let is_healthy t i = (device t i).dev_healthy
let resident t i = List.sort Stdlib.compare (device t i).dev_resident

let device_of t ~vm_id =
  match List.assoc_opt vm_id t.vms with
  | Some info -> Some info.vi_device
  | None -> None

let find_info t vm_id =
  match List.assoc_opt vm_id t.vms with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Pool: unknown vm %d" vm_id)

(* Estimated load of a device: the accumulated charged device time of
   its residents (the router's spec-estimate accounting) — the same
   currency WFQ costs are expressed in. *)
let load t (d : 'st device) =
  List.fold_left
    (fun acc vm_id ->
      match List.assoc_opt vm_id t.vms with
      | Some info -> acc + Vm.device_time_ns info.vi_vm
      | None -> acc)
    0 d.dev_resident

let load_of t i = load t (device t i)

let footprint_used t (d : 'st device) =
  List.fold_left
    (fun acc vm_id ->
      match List.assoc_opt vm_id t.vms with
      | Some info -> acc + info.vi_footprint
      | None -> acc)
    0 d.dev_resident

type device_stats = {
  ds_id : int;
  ds_capability : capability;
  ds_healthy : bool;
  ds_resident : int list;
  ds_load_ns : Time.t;
  ds_busy_ns : Time.t;
  ds_kernels : int;
  ds_footprint : int;
  ds_evac_in : int;
  ds_evac_out : int;
}

let stats t =
  Array.to_list
    (Array.map
       (fun d ->
         {
           ds_id = d.dev_id;
           ds_capability = d.dev_phys.ph_cap;
           ds_healthy = d.dev_healthy;
           ds_resident = List.sort Stdlib.compare d.dev_resident;
           ds_load_ns = load t d;
           ds_busy_ns = d.dev_phys.ph_busy_ns ();
           ds_kernels = d.dev_phys.ph_kernels ();
           ds_footprint = footprint_used t d;
           ds_evac_in = d.dev_evac_in;
           ds_evac_out = d.dev_evac_out;
         })
       t.devices)

(* {1 Placement} *)

let healthy_list t =
  List.filter (fun d -> d.dev_healthy) (Array.to_list t.devices)

(* Pick a device for a VM with the given declared footprint and
   capability requirement; [None] when no compatible healthy device is
   left.  With [requires = None] the behaviour (including round-robin
   cursor motion) is exactly the homogeneous pool's. *)
let choose ?requires t ~footprint =
  let healthy = List.filter (compatible requires) (healthy_list t) in
  match healthy with
  | [] -> None
  | _ -> (
      match t.placement with
      | Round_robin ->
          let n = Array.length t.devices in
          let rec find k steps =
            if steps >= n then None
            else
              let d = t.devices.(k mod n) in
              if d.dev_healthy && compatible requires d then begin
                t.rr_cursor <- (k + 1) mod n;
                Some d.dev_id
              end
              else find (k + 1) (steps + 1)
          in
          find t.rr_cursor 0
      | Least_loaded ->
          (* Ties break to the lowest device id. *)
          let best =
            List.fold_left
              (fun acc d ->
                let l = load t d in
                match acc with
                | Some (_, bl) when bl <= l -> acc
                | _ -> Some (d, l))
              None healthy
          in
          Option.map (fun (d, _) -> d.dev_id) best
      | Bin_pack ->
          (* Best-fit on declared footprints: among devices where the
             VM still fits, the one with the least remaining slack; if
             nothing fits (declared footprints oversubscribe memory),
             fall back to the least-committed device. *)
          let slack d = d.dev_phys.ph_capacity - footprint_used t d in
          let fits = List.filter (fun d -> slack d >= footprint) healthy in
          let pick_min key ds =
            List.fold_left
              (fun acc d ->
                let k = key d in
                match acc with
                | Some (_, bk) when bk <= k -> acc
                | _ -> Some (d, k))
              None ds
          in
          let best =
            match fits with
            | [] -> pick_min (fun d -> footprint_used t d) healthy
            | _ -> pick_min slack fits
          in
          Option.map (fun (d, _) -> d.dev_id) best)

(* Place a new VM, recording residency; [device] pins it explicitly
   (still validated against [requires] — a pin must not sneak a silo
   onto a device that cannot replay it). *)
let place ?(footprint = 0) ?requires ?device t ~vm =
  let dev_id =
    match device with
    | Some i ->
        if i < 0 || i >= Array.length t.devices then
          invalid_arg (Printf.sprintf "Pool.place: no device %d" i);
        if not (compatible requires t.devices.(i)) then
          invalid_arg
            (Printf.sprintf "Pool.place: device %d is %s, vm requires %s" i
               (capability_to_string t.devices.(i).dev_phys.ph_cap)
               (match requires with
               | Some c -> capability_to_string c
               | None -> "-"));
        i
    | None -> (
        match choose ?requires t ~footprint with
        | Some i -> i
        | None -> invalid_arg "Pool.place: no compatible healthy device")
  in
  t.vms <-
    ( Vm.id vm,
      { vi_vm = vm; vi_footprint = footprint; vi_requires = requires;
        vi_device = dev_id; vi_migrating = false } )
    :: t.vms;
  let d = t.devices.(dev_id) in
  d.dev_resident <- Vm.id vm :: d.dev_resident;
  record_trace t "vm%d placed on dev%d (%s%s, footprint=%dB)" (Vm.id vm)
    dev_id
    (placement_to_string t.placement)
    (match requires with
    | Some c -> ", requires " ^ capability_to_string c
    | None -> "")
    footprint;
  dev_id

(* {1 Live migration} *)

(* Move one VM's silo onto another device, re-steering its call flow.
   Must run inside a simulation process.

   Sequence: pause the source worker; wait a drain window for calls
   already at the source to finish (a call it executed but had not
   answered may execute again at the destination — at-least-once, the
   same contract as the restart/requeue path); attach the VM to the
   destination server (fresh context + silo) and seed its in-order
   cursor with the first live seq; replay the record log and restore
   buffer contents (the injected [transfer]); finally re-steer the
   router flow and detach the source entry.

   The detach matters beyond hygiene: a paused-forever source entry
   keeps its per-VM content store alive, and a later migration *back*
   to that device would find the stale store via [attach_vm]'s old
   reuse path and NAK digests the guest cache believes are resident —
   a resend loop no retry can heal.  Detaching frees the store so a
   return migration starts from an empty, coherent cache. *)
let migrate_vm t ~vm_id ~dest =
  let info = find_info t vm_id in
  if dest < 0 || dest >= Array.length t.devices then
    invalid_arg (Printf.sprintf "Pool.migrate_vm: no device %d" dest);
  if dest = info.vi_device then 0
  else if not (compatible info.vi_requires t.devices.(dest)) then begin
    (* Record/replay only reconstructs a silo on a same-type device; a
       capability-pinned VM refuses the move rather than wedging. *)
    record_trace t "vm%d migration to dev%d refused: requires %s" vm_id dest
      (match info.vi_requires with
      | Some c -> capability_to_string c
      | None -> "-");
    0
  end
  else if info.vi_migrating then begin
    (* Another process (skew monitor, evacuation) is already moving this
       VM; a second pause/drain/attach interleaved with the first would
       corrupt the re-steer.  First mover wins. *)
    record_trace t "vm%d already migrating; request ignored" vm_id;
    0
  end
  else begin
    let src = t.devices.(info.vi_device) in
    let dst = t.devices.(dest) in
    info.vi_migrating <- true;
    record_trace t "vm%d migrating dev%d -> dev%d" vm_id src.dev_id dst.dev_id;
    Server.pause_vm src.dev_server ~vm_id;
    Engine.delay t.drain_ns;
    (* The drain is a suspension point: another process may have retired
       the VM (admit/retire churn) while we slept.  A retired VM has no
       residency, no server entry and no router flow left — abort the
       migration instead of re-attaching a ghost. *)
    if not (List.mem_assoc vm_id t.vms) then begin
      t.aborted_migrations <- t.aborted_migrations + 1;
      record_trace t "vm%d retired during drain; migration aborted" vm_id;
      0
    end
    else begin
    let router_end, server_end = Transport.direct t.engine in
    ignore (Server.attach_vm dst.dev_server ~vm_id ~ep:server_end);
    let bytes = t.transfer ~vm_id ~src:src.dev_id ~dst:dest in
    (* Seed the destination's in-order cursor only now, after the
       transfer, in the same synchronous step as the re-steer.  The
       drain window is a grace period, not a handshake: a blocking call
       the source had already picked up (a [clFinish] riding out its
       kernels) can complete — and be answered — during the transfer.
       A cursor snapshotted at drain-end would still name that seq,
       and the destination would wait forever for a call whose reply
       the guest already consumed.  There is no suspension point
       between here and [resteer], so the ledger cannot shift under
       the snapshot. *)
    let seq = Router.next_seq t.router ~vm_id in
    Server.set_expected dst.dev_server ~vm_id ~seq;
    (* Carry the reply log: a reply the source sent but the link lost
       must still be replayable at the destination when the stub
       retransmits its seq (which now reads as a pre-cursor dup). *)
    Server.import_replies dst.dev_server ~vm_id
      (Server.export_replies src.dev_server ~vm_id);
    Router.resteer t.router ~vm_id ~backend:dest ~server_side:router_end;
    (* After [transfer] — it still needs the source context and silo. *)
    Server.detach_vm src.dev_server ~vm_id;
    src.dev_resident <- List.filter (fun v -> v <> vm_id) src.dev_resident;
    dst.dev_resident <- vm_id :: dst.dev_resident;
    info.vi_device <- dest;
    info.vi_migrating <- false;
    t.migrations <- t.migrations + 1;
    record_trace t "vm%d now on dev%d (expected seq %d, %dB moved)" vm_id
      dest seq bytes;
    bytes
    end
  end

(* {1 Retirement} *)

(* Retire a VM from the pool: detach its server entry (terminating the
   worker), drop residency on every device, and clear any circuit
   breaker so a future tenant reusing the id starts clean.

   Idempotent and validated rather than raising: admit/retire churn in a
   chaos campaign races retirement against the skew monitor and
   device-loss evacuation, so a double retire (or a retire that loses
   the race to a concurrent migration) must be a refusal, not a crash.
   A VM between pause and re-steer is refused — the migration holds the
   server entries and router flow; the caller retries after it
   completes (or the abort path in [migrate_vm] lets the next retire
   succeed). *)
let retire_vm t ~vm_id =
  match List.assoc_opt vm_id t.vms with
  | None -> false
  | Some info when info.vi_migrating ->
      record_trace t "vm%d retire refused: migration in flight" vm_id;
      false
  | Some _ ->
      Array.iter
        (fun d ->
          if Option.is_some (Server.vm_ctx d.dev_server ~vm_id) then
            Server.detach_vm d.dev_server ~vm_id;
          d.dev_resident <- List.filter (fun v -> v <> vm_id) d.dev_resident)
        t.devices;
      t.vms <- List.remove_assoc vm_id t.vms;
      Router.clear_breaker t.router ~vm_id;
      t.retires <- t.retires + 1;
      record_trace t "vm%d retired" vm_id;
      true

(* {1 Device loss and evacuation} *)

(* Permanently lose a device (TDR poison escalation, NCS unplug) and
   evacuate its residents onto healthy devices via the placement
   policy.  The client wedging the device at death keeps any open
   circuit breaker — it earned it; every other evacuee's breaker is
   cleared so innocent VMs resume service immediately.  Must run
   inside a simulation process. *)
let kill_device t ~device:dev_id =
  let dev = device t dev_id in
  if dev.dev_healthy then begin
    (* Blame before the kill: the kill clears the wedge. *)
    let blamed = dev.dev_phys.ph_wedged_by () in
    dev.dev_phys.ph_kill ();
    dev.dev_healthy <- false;
    record_trace t "dev%d lost (%d resident, blamed=%s)" dev_id
      (List.length dev.dev_resident)
      (match blamed with Some v -> string_of_int v | None -> "-");
    let victims = List.sort Stdlib.compare dev.dev_resident in
    List.iter
      (fun vm_id ->
        (* Each evacuation migration drains (a suspension point), so a
           victim later in the list may retire before its turn comes —
           skip it rather than evacuate a ghost. *)
        match List.assoc_opt vm_id t.vms with
        | None -> ()
        | Some info -> (
            match choose ?requires:info.vi_requires t
                    ~footprint:info.vi_footprint
            with
            | None ->
                record_trace t "vm%d stranded: no compatible healthy device"
                  vm_id
            | Some dest ->
                ignore (migrate_vm t ~vm_id ~dest);
                if List.mem_assoc vm_id t.vms then begin
                  t.evacuations <- t.evacuations + 1;
                  dev.dev_evac_out <- dev.dev_evac_out + 1;
                  t.devices.(dest).dev_evac_in <-
                    t.devices.(dest).dev_evac_in + 1;
                  if blamed <> Some vm_id then
                    Router.clear_breaker t.router ~vm_id
                end))
      victims
  end

(* {1 Rebalancing} *)

(* One rebalance step: when the hottest healthy device's load exceeds
   [skew] times the healthy average, migrate the resident whose load
   best halves the hot-cold gap onto the coldest device.  Returns
   whether a migration happened.  Must run inside a simulation
   process. *)
let rebalance_now ?(skew = default_rebalance.rb_skew) t =
  let healthy = healthy_list t in
  if List.length healthy < 2 then false
  else begin
    let loads = List.map (fun d -> (d, load t d)) healthy in
    let total = List.fold_left (fun a (_, l) -> a + l) 0 loads in
    let avg = total / List.length healthy in
    let hot, hot_load =
      List.fold_left
        (fun (bd, bl) (d, l) -> if l > bl then (d, l) else (bd, bl))
        (List.hd loads) (List.tl loads)
    in
    let cold, cold_load =
      List.fold_left
        (fun (bd, bl) (d, l) -> if l < bl then (d, l) else (bd, bl))
        (List.hd loads) (List.tl loads)
    in
    if
      total = 0
      || float_of_int hot_load <= skew *. float_of_int avg
      || List.length hot.dev_resident < 2
      || hot.dev_id = cold.dev_id
    then false
    else begin
      (* The ideal emigrant carries half the hot-cold gap. *)
      let target = (hot_load - cold_load) / 2 in
      let victim =
        List.fold_left
          (fun acc vm_id ->
            match List.assoc_opt vm_id t.vms with
            | None -> acc
            (* A capability-pinned resident can only move to a same-type
               device; skip it when the cold device doesn't match. *)
            | Some info when not (compatible info.vi_requires cold) -> acc
            | Some info ->
                let w = Vm.device_time_ns info.vi_vm in
                if w = 0 then acc
                else
                  let fit = abs (w - target) in
                  let better =
                    match acc with
                    | None -> true
                    | Some (bvm, bfit) ->
                        fit < bfit || (fit = bfit && vm_id < bvm)
                  in
                  if better then Some (vm_id, fit) else acc)
          None hot.dev_resident
      in
      match victim with
      | None -> false
      | Some (vm_id, _) ->
          record_trace t
            "rebalance: dev%d load=%d avg=%d -> moving vm%d to dev%d" hot.dev_id
            hot_load avg vm_id cold.dev_id;
          ignore (migrate_vm t ~vm_id ~dest:cold.dev_id);
          t.rebalances <- t.rebalances + 1;
          true
    end
  end

(* The skew monitor: a periodic process checking [rebalance_now].  It
   must be stopped explicitly ([stop]) or [Engine.run] would never
   drain its event queue. *)
let start_rebalancer ?(config = default_rebalance) t =
  Engine.spawn t.engine ~name:"ava-pool-rebalance" (fun () ->
      let rec loop () =
        if not t.stopped then begin
          Engine.delay config.rb_interval;
          if not t.stopped then ignore (rebalance_now ~skew:config.rb_skew t);
          loop ()
        end
      in
      loop ())

let stop t = t.stopped <- true

(* {1 Cross-host emigration}

   The cluster tier moves a VM to *another host's* pool.  This pool
   only bookkeeps its side of the hand-off: [begin_emigration] claims
   the VM under the same first-mover-wins flag that serializes local
   migrations (so the skew monitor, evacuation and retirement all keep
   their hands off while the cluster orchestrates pause / drain /
   replay / cross-router transfer), and [complete_emigration] drops
   residency and the VM entry without detaching the server — the
   cluster detaches the source entry itself, after the transfer closure
   has finished with the source context and silo. *)

let begin_emigration t ~vm_id =
  match List.assoc_opt vm_id t.vms with
  | None -> None
  | Some info when info.vi_migrating ->
      record_trace t "vm%d emigration refused: migration in flight" vm_id;
      None
  | Some info ->
      info.vi_migrating <- true;
      record_trace t "vm%d emigration begins from dev%d" vm_id info.vi_device;
      Some info.vi_device

let abort_emigration t ~vm_id =
  match List.assoc_opt vm_id t.vms with
  | Some info -> info.vi_migrating <- false
  | None -> ()

let complete_emigration t ~vm_id =
  match List.assoc_opt vm_id t.vms with
  | None -> ()
  | Some info ->
      let d = t.devices.(info.vi_device) in
      d.dev_resident <- List.filter (fun v -> v <> vm_id) d.dev_resident;
      t.vms <- List.remove_assoc vm_id t.vms;
      t.emigrations <- t.emigrations + 1;
      record_trace t "vm%d emigrated off dev%d" vm_id info.vi_device
