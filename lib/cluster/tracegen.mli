(** Synthetic tenant-load traces for the cluster tier.

    A trace models millions-of-users traffic shapes over a seeded
    generator: tenant arrival/departure, heavy-tailed (Pareto) session
    work, diurnal arrival-rate modulation, bursty hot tenants and
    straggler sessions — instead of the 8 fixed Rodinia tenants of the
    single-host benches.

    Determinism: a [config] (seed included) fully determines the trace.
    The diurnal amplitude only reshapes {e time} — every random draw is
    made before modulation is applied — so the tenant population, class
    assignment and per-session work are identical across amplitudes
    (the "diurnal-phase conservation" property the tests pin). *)

open Ava_sim

(** Tenant classes: [Hot] tenants burst — heavier sessions arriving
    back-to-back; [Straggler] tenants think far longer between
    sessions, holding residency while contributing little load. *)
type klass = Normal | Hot | Straggler

type event =
  | Arrive of { at : Time.t; tenant : int; klass : klass }
  | Session of { at : Time.t; tenant : int; work : int }
      (** run [work] kernel iterations no earlier than [at] *)
  | Depart of { at : Time.t; tenant : int }

type config = {
  tg_seed : int64;
  tg_tenants : int;
  tg_mean_interarrival_ns : int;  (** base tenant arrival gap *)
  tg_sessions_mean : float;  (** mean sessions per tenant (geometric) *)
  tg_think_mean_ns : int;  (** mean gap between a tenant's sessions *)
  tg_session_alpha : float;  (** Pareto tail index of session work *)
  tg_session_xm : float;  (** Pareto scale: minimum work units *)
  tg_work_cap : int;  (** clamp on one session's work units *)
  tg_diurnal_amplitude : float;
      (** arrival-rate modulation in [0, 1): rate scales by
          [1 + A sin(2 pi t / period)] *)
  tg_diurnal_period_ns : int;
  tg_hot_fraction : float;  (** tenants drawn into the [Hot] class *)
  tg_hot_factor : float;  (** work multiplier for hot sessions *)
  tg_straggler_fraction : float;
  tg_straggler_factor : float;  (** think-time multiplier *)
}

val default : config
(** 24 tenants, 50 us base interarrival, Pareto(1.5) work from 1 unit
    capped at 32, 10% hot (4x work, bursty), 10% stragglers (8x
    think), one diurnal period per ~2 ms. *)

val generate : config -> event list
(** The trace, sorted by time (ties in generation order).  Every tenant
    arrives exactly once, runs >= 1 sessions between arrival and
    departure, and departs exactly once. *)

val at : event -> Time.t
val tenant : event -> int

val total_work : event list -> int
(** Summed session work units. *)

val total_sessions : event list -> int

val describe : config -> string
(** One-line summary for bench JSON / logs. *)
