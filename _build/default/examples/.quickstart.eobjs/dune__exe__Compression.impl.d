examples/compression.ml: Ava_core Ava_sim Ava_simqa Bytes Char Engine Fmt Host List Time
