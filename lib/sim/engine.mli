(** Discrete-event engine with effects-based cooperative processes.

    The engine is a min-heap of (virtual-time, callback) events.  A
    process is an OCaml function run under an effect handler: performing
    {!delay} suspends it and re-schedules its continuation later;
    {!await} suspends it until another event invokes the resume callback
    handed to its registration function.  Everything runs on one OS
    thread; runs are fully deterministic. *)

type t

exception Stalled of string
(** Raised by {!run_process} when the event queue drains while the
    process is still blocked. *)

val create : unit -> t

val now : t -> Time.t
(** The current virtual instant. *)

(** {1 Event scheduling} *)

val schedule : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule a callback at an absolute instant (clamped to [now]).
    Same-instant callbacks fire in scheduling order. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit
(** Schedule a callback after a relative delay (clamped to 0). *)

(** {1 Processes}

    [delay], [await] and [yield] must be performed from inside a process
    body started with {!spawn} or {!run_process}. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current instant. *)

val delay : Time.t -> unit
(** Suspend the calling process for a virtual duration. *)

val await : (('a -> unit) -> unit) -> 'a
(** [await register] suspends the calling process; [register] receives a
    resume callback that, when invoked (exactly once, at any later
    virtual time), resumes the process with the given value. *)

val yield : unit -> unit
(** [delay 0]: let same-instant events run. *)

(** {1 Running} *)

val run : ?until:Time.t -> t -> unit
(** Drain the event queue.  With [~until], stop once the next event lies
    beyond the horizon; the clock advances to the horizon (also when the
    queue is empty or drains early, and never backwards) and pending
    events remain for a later [run]. *)

val run_process : t -> (unit -> 'a) -> 'a
(** Spawn [body], run the engine to completion and return the body's
    result.
    @raise Stalled if the process never completed. *)

(** {1 Introspection} *)

val live_processes : t -> int
val spawned : t -> int
val pending_events : t -> int

val events_executed : t -> int
(** Total events dispatched by {!run} since {!create} — the
    denominator for the simcore wall-clock metrics. *)
