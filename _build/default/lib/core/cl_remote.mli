(** The AvA-generated guest library for SimCL.

    Implements the full {!Ava_simcl.Api.S} over a {!Ava_remoting.Stub}:
    this is what a guest application links against instead of the vendor
    library.  Marshalling layout, synchrony and size accounting follow
    the compiled plan of the refined CAvA spec.

    Conventions: one wire value per C parameter, in declaration order;
    object-creating calls return server-assigned virtual ids; event
    out-parameters are guest-assigned ids so asynchronously forwarded
    enqueues hand back a usable handle immediately; async failures
    surface via the stub's deferred-error channel at the next
    synchronous call (§4.2). *)

type t

val create : Ava_remoting.Stub.t -> (module Ava_simcl.Api.S) * t
val stub : t -> Ava_remoting.Stub.t
