(** Flat 4-ary min-heap keyed by [(time, sequence-number)].

    The sequence number breaks ties so that events scheduled for the same
    instant fire in insertion order, keeping the simulation
    deterministic.  Keys, sequence numbers and payload-slot indices are
    stored in parallel [int array]s and payloads in a stable slot table,
    so {!add} allocates nothing, sifts move only ints (no write
    barrier), and the {!min_key}/{!pop_exn} pair lets the engine drain
    events without materialising options or entry records.  Payload
    slots are cleared on pop, so a drained heap retains none of the
    popped closures. *)

type 'a entry = { key : int; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> key:int -> seq:int -> 'a -> unit
(** Amortized O(log n); allocation-free outside capacity growth. *)

val min_key : 'a t -> int
(** Key of the smallest entry without removing it.  O(1).
    @raise Invalid_argument on an empty heap. *)

val min_seq : 'a t -> int
(** Sequence number of the smallest entry.  O(1).
    @raise Invalid_argument on an empty heap. *)

val pop_exn : 'a t -> 'a
(** Remove the smallest entry and return its payload; the vacated slot
    is cleared.  Allocation-free.
    @raise Invalid_argument on an empty heap. *)

val unsafe_min_key : 'a t -> int
val unsafe_min_seq : 'a t -> int

val unsafe_pop : 'a t -> 'a
(** Unchecked variants of {!min_key}/{!min_seq}/{!pop_exn} for drain
    loops that have already established non-emptiness.  Calling any of
    them on an empty heap is undefined behaviour. *)

val peek : 'a t -> 'a entry option
(** Smallest entry without removing it (allocating convenience API). *)

val pop : 'a t -> 'a entry option
(** Remove and return the smallest entry (allocating convenience API). *)
