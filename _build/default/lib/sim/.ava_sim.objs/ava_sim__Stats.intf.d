lib/sim/stats.mli: Format
