lib/core/qa_handlers.mli: Ava_remoting Ava_simqa
