(* Rodinia-shaped OpenCL workloads (Che et al., IISWC '09) — the ten
   benchmarks of Figure 5.

   Each benchmark reproduces the *call-graph shape* of its namesake:
   iteration counts, kernel-launch counts, argument-update patterns,
   buffer sizes and synchronization points.  Kernel durations use
   synthetic kernels whose per-item flop counts are solved from a target
   duration on the reference GPU, because relative virtualization
   overhead is a function of the call mix, not of what the kernel
   computes.

   Payloads are zero-filled ([Bytes.make], never the uninitialized
   [Bytes.create]): the simulation must be deterministic, and the
   transfer cache digests payload contents. *)

open Clutil
open Ava_simcl.Types

type benchmark = {
  name : string;
  description : string;
  run : (module Ava_simcl.Api.S) -> unit;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* Per-item flops so that [items] work items run for [us] on the
   reference GPU (pure compute roofline). *)
let flops_for ~items ~us =
  let flops = Ava_device.Timing.gtx1080.Ava_device.Timing.flops_per_s in
  us *. 1e-6 *. flops /. float_of_int items

let kernel_decl name ~items ~us = (name, flops_for ~items ~us, 0.0)

(* backprop: two-layer neural net; a handful of large kernels over
   moderate buffers, two result read-backs. *)
let backprop api =
  let s = open_session api in
  let input = buffer s (mib 1) in
  let weights = buffer s (mib 1) in
  let hidden = buffer s (kib 64) in
  let delta = buffer s (mib 1) in
  write s input (Bytes.make (mib 1) '\000');
  write s weights (Bytes.make (mib 1) '\000');
  write s delta (Bytes.make (mib 1) '\000');
  let items = 65536 in
  let kernels =
    build_kernels s
      [
        kernel_decl "layerforward" ~items ~us:800.0;
        kernel_decl "adjust_weights" ~items ~us:800.0;
      ]
  in
  let forward, adjust =
    match kernels with [ a; b ] -> (a, b) | _ -> assert false
  in
  set_arg s forward 0 (Arg_mem input);
  set_arg s forward 1 (Arg_mem weights);
  set_arg s forward 2 (Arg_mem hidden);
  set_arg s adjust 0 (Arg_mem delta);
  set_arg s adjust 1 (Arg_mem weights);
  (* forward + backward over both layers *)
  launch s forward ~global:items ~local:256;
  launch s forward ~global:items ~local:256;
  launch s adjust ~global:items ~local:256;
  launch s adjust ~global:items ~local:256;
  ignore (read s hidden ~size:(kib 64));
  ignore (read s weights ~size:(mib 1));
  finish s;
  close_session s

(* bfs: level-synchronous traversal; every level launches two small
   kernels and reads back a 4-byte continuation flag — the chatty,
   synchronization-heavy extreme of the suite. *)
let bfs api =
  let s = open_session api in
  let graph = buffer s (mib 4) in
  let frontier = buffer s (mib 1) in
  let flag = buffer s 64 in
  write s graph (Bytes.make (mib 4) '\000');
  write s frontier (Bytes.make (mib 1) '\000');
  let items = 1_000_000 in
  let kernels =
    build_kernels s
      [
        kernel_decl "bfs_expand" ~items ~us:35.0;
        kernel_decl "bfs_update" ~items ~us:20.0;
      ]
  in
  let expand, update =
    match kernels with [ a; b ] -> (a, b) | _ -> assert false
  in
  set_arg s expand 0 (Arg_mem graph);
  set_arg s expand 1 (Arg_mem frontier);
  set_arg s update 0 (Arg_mem frontier);
  set_arg s update 1 (Arg_mem flag);
  for _level = 1 to 300 do
    launch s expand ~global:items ~local:256;
    launch s update ~global:items ~local:256;
    (* Continuation test: blocking 4-byte read every level. *)
    ignore (read s flag ~size:4)
  done;
  finish s;
  close_session s

(* gaussian: O(n) dependent eliminations; thousands of small launches
   with per-row argument updates, no intermediate read-backs. *)
let gaussian api =
  let s = open_session api in
  let matrix = buffer s (mib 4) in
  let vector = buffer s (kib 8) in
  write s matrix (Bytes.make (mib 4) '\000');
  write s vector (Bytes.make (kib 8) '\000');
  let n = 1024 in
  let kernels =
    build_kernels s
      [
        kernel_decl "fan1" ~items:n ~us:12.0;
        kernel_decl "fan2" ~items:(n * 16) ~us:25.0;
      ]
  in
  let fan1, fan2 =
    match kernels with [ a; b ] -> (a, b) | _ -> assert false
  in
  set_arg s fan1 0 (Arg_mem matrix);
  set_arg s fan2 0 (Arg_mem matrix);
  set_arg s fan2 1 (Arg_mem vector);
  for row = 0 to n - 1 do
    set_arg s fan1 1 (Arg_int row);
    launch s fan1 ~global:n ~local:64;
    set_arg s fan2 2 (Arg_int row);
    launch s fan2 ~global:(n * 16) ~local:256;
    (* Rodinia's harness synchronizes around kernel phases. *)
    if row mod 3 = 2 then finish s
  done;
  ignore (read s matrix ~size:(mib 4));
  finish s;
  close_session s

(* heartwall: per-frame image pipeline; a large kernel plus staging
   transfers every frame. *)
let heartwall api =
  let s = open_session api in
  let frame = buffer s (kib 600) in
  let result = buffer s (kib 300) in
  let kernels =
    build_kernels s [ kernel_decl "track" ~items:65536 ~us:1200.0 ]
  in
  let track = List.hd kernels in
  set_arg s track 0 (Arg_mem frame);
  set_arg s track 1 (Arg_mem result);
  for _frame = 1 to 20 do
    write s frame (Bytes.make (kib 600) '\000');
    launch s track ~global:65536 ~local:128;
    ignore (read s result ~size:(kib 300))
  done;
  finish s;
  close_session s

(* hotspot: iterative thermal stencil with ping-pong buffers — one
   medium kernel and two argument updates per step. *)
let hotspot api =
  let s = open_session api in
  let temp_a = buffer s (mib 1) in
  let temp_b = buffer s (mib 1) in
  let power = buffer s (mib 1) in
  write s temp_a (Bytes.make (mib 1) '\000');
  write s power (Bytes.make (mib 1) '\000');
  let items = 262_144 in
  let kernels =
    build_kernels s [ kernel_decl "hotspot_step" ~items ~us:20.0 ]
  in
  let step = List.hd kernels in
  set_arg s step 0 (Arg_mem power);
  let bufs = [| temp_a; temp_b |] in
  for iter = 0 to 999 do
    set_arg s step 1 (Arg_mem bufs.(iter land 1));
    set_arg s step 2 (Arg_mem bufs.(1 - (iter land 1)));
    launch s step ~global:items ~local:256;
    (* Timing barrier every pyramid chunk. *)
    if iter mod 10 = 9 then finish s
  done;
  ignore (read s temp_a ~size:(mib 1));
  finish s;
  close_session s

(* lud: blocked LU decomposition; three dependent kernels per block
   step. *)
let lud api =
  let s = open_session api in
  let matrix = buffer s (mib 8) in
  write s matrix (Bytes.make (mib 8) '\000');
  let kernels =
    build_kernels s
      [
        kernel_decl "lud_diagonal" ~items:256 ~us:8.0;
        kernel_decl "lud_perimeter" ~items:4096 ~us:16.0;
        kernel_decl "lud_internal" ~items:65536 ~us:36.0;
      ]
  in
  let diag, perim, internal =
    match kernels with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  List.iter (fun k -> set_arg s k 0 (Arg_mem matrix)) [ diag; perim; internal ];
  for step = 0 to 127 do
    set_arg s diag 1 (Arg_int step);
    launch s diag ~global:256 ~local:16;
    set_arg s perim 1 (Arg_int step);
    launch s perim ~global:4096 ~local:64;
    set_arg s internal 1 (Arg_int step);
    launch s internal ~global:65536 ~local:256;
    if step mod 4 = 3 then finish s
  done;
  ignore (read s matrix ~size:(mib 8));
  finish s;
  close_session s

(* nn: nearest neighbor — one bulk upload, one long memory-bound kernel,
   a tiny sorted read-back.  The least chatty benchmark. *)
let nn api =
  let s = open_session api in
  let records = buffer s (kib 512) in
  let distances = buffer s (kib 16) in
  write s records (Bytes.make (kib 512) '\000');
  let kernels =
    build_kernels s [ kernel_decl "nn_distance" ~items:1_000_000 ~us:8000.0 ]
  in
  let k = List.hd kernels in
  set_arg s k 0 (Arg_mem records);
  set_arg s k 1 (Arg_mem distances);
  launch s k ~global:1_000_000 ~local:256;
  ignore (read s distances ~size:(kib 16));
  finish s;
  close_session s

(* nw: Needleman-Wunsch — anti-diagonal wavefront of very small
   dependent kernels. *)
let nw api =
  let s = open_session api in
  let score = buffer s (mib 4) in
  write s score (Bytes.make (mib 4) '\000');
  let kernels =
    build_kernels s [ kernel_decl "nw_diag" ~items:2048 ~us:12.0 ]
  in
  let diag = List.hd kernels in
  set_arg s diag 0 (Arg_mem score);
  (* Two passes of 127 anti-diagonals (2048 / 16-wide blocks). *)
  for _pass = 1 to 2 do
    for d = 0 to 126 do
      set_arg s diag 1 (Arg_int d);
      launch s diag ~global:2048 ~local:16;
      if d mod 7 = 6 then finish s
    done
  done;
  ignore (read s score ~size:(mib 4));
  finish s;
  close_session s

(* pathfinder: dynamic programming over rows; one small kernel and two
   argument updates per row. *)
let pathfinder api =
  let s = open_session api in
  let wall = buffer s (mib 4) in
  let result_a = buffer s (kib 400) in
  let result_b = buffer s (kib 400) in
  write s wall (Bytes.make (mib 4) '\000');
  let items = 100_000 in
  let kernels =
    build_kernels s [ kernel_decl "dynproc" ~items ~us:12.0 ]
  in
  let step = List.hd kernels in
  set_arg s step 0 (Arg_mem wall);
  let bufs = [| result_a; result_b |] in
  for row = 0 to 999 do
    set_arg s step 1 (Arg_mem bufs.(row land 1));
    set_arg s step 2 (Arg_mem bufs.(1 - (row land 1)));
    launch s step ~global:items ~local:256;
    if row mod 7 = 6 then finish s
  done;
  ignore (read s result_a ~size:(kib 400));
  finish s;
  close_session s

(* srad: speckle-reducing diffusion; two kernels per iteration with a
   blocking statistics reduction between them. *)
let srad api =
  let s = open_session api in
  let image = buffer s (mib 2) in
  let coeff = buffer s (mib 2) in
  let sums = buffer s 64 in
  write s image (Bytes.make (mib 2) '\000');
  let items = 262_144 in
  let kernels =
    build_kernels s
      [
        kernel_decl "srad1" ~items ~us:70.0;
        kernel_decl "srad2" ~items ~us:70.0;
      ]
  in
  let srad1, srad2 =
    match kernels with [ a; b ] -> (a, b) | _ -> assert false
  in
  set_arg s srad1 0 (Arg_mem image);
  set_arg s srad1 1 (Arg_mem coeff);
  set_arg s srad2 0 (Arg_mem coeff);
  set_arg s srad2 1 (Arg_mem image);
  for _iter = 1 to 300 do
    (* Statistics reduction read: synchronous. *)
    ignore (read s sums ~size:8);
    launch s srad1 ~global:items ~local:256;
    launch s srad2 ~global:items ~local:256
  done;
  ignore (read s image ~size:(mib 2));
  finish s;
  close_session s

let all =
  [
    { name = "backprop"; description = "two-layer neural net training"; run = backprop };
    { name = "bfs"; description = "level-synchronous breadth-first search"; run = bfs };
    { name = "gaussian"; description = "gaussian elimination"; run = gaussian };
    { name = "heartwall"; description = "cardiac image tracking"; run = heartwall };
    { name = "hotspot"; description = "thermal stencil"; run = hotspot };
    { name = "lud"; description = "blocked LU decomposition"; run = lud };
    { name = "nn"; description = "nearest neighbor"; run = nn };
    { name = "nw"; description = "Needleman-Wunsch alignment"; run = nw };
    { name = "pathfinder"; description = "dynamic programming"; run = pathfinder };
    { name = "srad"; description = "speckle-reducing diffusion"; run = srad };
  ]

let find name = List.find_opt (fun b -> String.equal b.name name) all
let names = List.map (fun b -> b.name) all
