(* Embedded API headers and refined CAvA specifications for the two
   accelerator silos this reproduction virtualizes: SimCL (OpenCL subset,
   39 functions) and MVNC (Movidius NCSDK subset, 10 functions).

   [simcl_header]/[mvnc_header] are the *unmodified* vendor headers fed to
   inference; [simcl_spec]/[mvnc_spec] are the developer-refined CAvA
   specs (the Figure 2 workflow's output) from which the remoting stacks
   are generated. *)

let simcl_header =
  {|
/* SimCL: the public API of the simulated OpenCL silo. */
#define CL_SUCCESS 0
#define CL_TRUE 1
#define CL_FALSE 0
#define CL_DEVICE_TYPE_GPU 4
#define CL_QUEUE_PROFILING_ENABLE 2

typedef int cl_int;
typedef unsigned int cl_uint;
typedef int cl_bool;
typedef struct _cl_platform_id *cl_platform_id;
typedef struct _cl_device_id *cl_device_id;
typedef struct _cl_context *cl_context;
typedef struct _cl_command_queue *cl_command_queue;
typedef struct _cl_mem *cl_mem;
typedef struct _cl_program *cl_program;
typedef struct _cl_kernel *cl_kernel;
typedef struct _cl_event *cl_event;

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id *platforms, cl_uint *num_platforms);
cl_int clGetPlatformInfo(cl_platform_id platform, cl_uint param_name, size_t value_size, char *param_value);
cl_int clGetDeviceIDs(cl_platform_id platform, cl_uint device_type, cl_uint num_entries, cl_device_id *devices, cl_uint *num_devices);
cl_int clGetDeviceInfo(cl_device_id device, cl_uint param_name, size_t value_size, char *param_value);
cl_context clCreateContext(const cl_device_id *devices, cl_uint num_devices, cl_int *errcode_ret);
cl_int clRetainContext(cl_context context);
cl_int clReleaseContext(cl_context context);
cl_int clGetContextInfo(cl_context context, cl_uint *refcount);
cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device, cl_uint properties, cl_int *errcode_ret);
cl_int clRetainCommandQueue(cl_command_queue command_queue);
cl_int clReleaseCommandQueue(cl_command_queue command_queue);
cl_int clGetCommandQueueInfo(cl_command_queue command_queue, cl_context *context);
cl_mem clCreateBuffer(cl_context context, cl_uint flags, size_t size, cl_int *errcode_ret);
cl_int clRetainMemObject(cl_mem buf);
cl_int clReleaseMemObject(cl_mem buf);
cl_int clGetMemObjectInfo(cl_mem buf, size_t *size);
cl_program clCreateProgramWithSource(cl_context context, const char *source, size_t source_size, cl_int *errcode_ret);
cl_int clBuildProgram(cl_program program, const char *options, size_t options_size);
cl_int clGetProgramBuildInfo(cl_program program, size_t value_size, char *param_value);
cl_int clRetainProgram(cl_program program);
cl_int clReleaseProgram(cl_program program);
cl_kernel clCreateKernel(cl_program program, const char *kernel_name, size_t kernel_name_size, cl_int *errcode_ret);
cl_int clRetainKernel(cl_kernel kernel);
cl_int clReleaseKernel(cl_kernel kernel);
cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size, const void *arg_value);
cl_int clGetKernelInfo(cl_kernel kernel, size_t value_size, char *param_value);
cl_int clGetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device, size_t *wg_size);
cl_int clEnqueueNDRangeKernel(cl_command_queue command_queue, cl_kernel kernel, size_t global_work_size, size_t local_work_size, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueTask(cl_command_queue command_queue, cl_kernel kernel, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueReadBuffer(cl_command_queue command_queue, cl_mem buf, cl_bool blocking_read, size_t offset, size_t size, void *ptr, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueWriteBuffer(cl_command_queue command_queue, cl_mem buf, cl_bool blocking_write, size_t offset, size_t size, const void *ptr, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueCopyBuffer(cl_command_queue command_queue, cl_mem src_buffer, cl_mem dst_buffer, size_t src_offset, size_t dst_offset, size_t size, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueFillBuffer(cl_command_queue command_queue, cl_mem buf, cl_uint pattern, size_t offset, size_t size, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event);
cl_int clFlush(cl_command_queue command_queue);
cl_int clFinish(cl_command_queue command_queue);
cl_int clWaitForEvents(cl_uint num_events, const cl_event *event_list);
cl_int clGetEventInfo(cl_event event, cl_uint *status);
cl_int clGetEventProfilingInfo(cl_event event, cl_uint param_name, uint64_t *value);
cl_int clReleaseEvent(cl_event event);
|}

let simcl_spec =
  {|
api("simcl");
#include "cl_sim.h"

type(cl_int) { success(CL_SUCCESS); }

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id *platforms, cl_uint *num_platforms) {
  sync;
  parameter(platforms) { out; buffer(num_entries, 8); }
  parameter(num_platforms) { out; element { } }
  record(no_record);
}

cl_int clGetPlatformInfo(cl_platform_id platform, cl_uint param_name, size_t value_size, char *param_value) {
  sync;
  parameter(param_value) { out; buffer(value_size); }
  record(no_record);
}

cl_int clGetDeviceIDs(cl_platform_id platform, cl_uint device_type, cl_uint num_entries, cl_device_id *devices, cl_uint *num_devices) {
  sync;
  parameter(devices) { out; buffer(num_entries, 8); }
  parameter(num_devices) { out; element { } }
  record(no_record);
}

cl_int clGetDeviceInfo(cl_device_id device, cl_uint param_name, size_t value_size, char *param_value) {
  sync;
  parameter(param_value) { out; buffer(value_size); }
  record(no_record);
}

cl_context clCreateContext(const cl_device_id *devices, cl_uint num_devices, cl_int *errcode_ret) {
  sync;
  parameter(devices) { in; buffer(num_devices, 8); }
  parameter(errcode_ret) { out; element { } }
  record(object_alloc);
}

cl_int clRetainContext(cl_context context) {
  async;
  record(object_modify);
}

cl_int clReleaseContext(cl_context context) {
  async;
  parameter(context) { deallocates; }
  record(object_dealloc);
}

cl_int clGetContextInfo(cl_context context, cl_uint *refcount) {
  sync;
  parameter(refcount) { out; element { } }
  record(no_record);
}

cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device, cl_uint properties, cl_int *errcode_ret) {
  sync;
  parameter(errcode_ret) { out; element { } }
  record(object_alloc);
}

cl_int clRetainCommandQueue(cl_command_queue command_queue) {
  async;
  record(object_modify);
}

cl_int clReleaseCommandQueue(cl_command_queue command_queue) {
  async;
  parameter(command_queue) { deallocates; }
  record(object_dealloc);
}

cl_int clGetCommandQueueInfo(cl_command_queue command_queue, cl_context *context) {
  sync;
  parameter(context) { out; element { } }
  record(no_record);
}

cl_mem clCreateBuffer(cl_context context, cl_uint flags, size_t size, cl_int *errcode_ret) {
  sync;
  parameter(errcode_ret) { out; element { } }
  resource(device_memory, size);
  record(object_alloc);
}

cl_int clRetainMemObject(cl_mem buf) {
  async;
  record(object_modify);
}

cl_int clReleaseMemObject(cl_mem buf) {
  async;
  parameter(buf) { deallocates; }
  record(object_dealloc);
}

cl_int clGetMemObjectInfo(cl_mem buf, size_t *size) {
  sync;
  parameter(size) { out; element { } }
  record(no_record);
}

cl_program clCreateProgramWithSource(cl_context context, const char *source, size_t source_size, cl_int *errcode_ret) {
  sync;
  parameter(source) { in; buffer(source_size); }
  parameter(errcode_ret) { out; element { } }
  record(object_alloc);
}

cl_int clBuildProgram(cl_program program, const char *options, size_t options_size) {
  sync;
  parameter(options) { in; buffer(options_size); }
  record(object_modify);
}

cl_int clGetProgramBuildInfo(cl_program program, size_t value_size, char *param_value) {
  sync;
  parameter(param_value) { out; buffer(value_size); }
  record(no_record);
}

cl_int clRetainProgram(cl_program program) {
  async;
  record(object_modify);
}

cl_int clReleaseProgram(cl_program program) {
  async;
  parameter(program) { deallocates; }
  record(object_dealloc);
}

cl_kernel clCreateKernel(cl_program program, const char *kernel_name, size_t kernel_name_size, cl_int *errcode_ret) {
  sync;
  parameter(kernel_name) { in; buffer(kernel_name_size); }
  parameter(errcode_ret) { out; element { } }
  record(object_alloc);
}

cl_int clRetainKernel(cl_kernel kernel) {
  async;
  record(object_modify);
}

cl_int clReleaseKernel(cl_kernel kernel) {
  async;
  parameter(kernel) { deallocates; }
  record(object_dealloc);
}

cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size, const void *arg_value) {
  async;
  parameter(arg_value) { in; buffer(arg_size); }
  record(object_modify);
}

cl_int clGetKernelInfo(cl_kernel kernel, size_t value_size, char *param_value) {
  sync;
  parameter(param_value) { out; buffer(value_size); }
  record(no_record);
}

cl_int clGetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device, size_t *wg_size) {
  sync;
  parameter(wg_size) { out; element { } }
  record(no_record);
}

cl_int clEnqueueNDRangeKernel(cl_command_queue command_queue, cl_kernel kernel, size_t global_work_size, size_t local_work_size, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list, 8); }
  parameter(event) { out; element { allocates; } }
  resource(device_time, global_work_size);
  record(no_record);
}

cl_int clEnqueueTask(cl_command_queue command_queue, cl_kernel kernel, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list, 8); }
  parameter(event) { out; element { allocates; } }
  resource(device_time, 1);
  record(no_record);
}

cl_int clEnqueueReadBuffer(cl_command_queue command_queue, cl_mem buf, cl_bool blocking_read, size_t offset, size_t size, void *ptr, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event) {
  if (blocking_read == CL_TRUE) sync; else async;
  parameter(ptr) { out; buffer(size); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list, 8); }
  parameter(event) { out; element { allocates; } }
  resource(bus_bytes, size);
  record(no_record);
}

cl_int clEnqueueWriteBuffer(cl_command_queue command_queue, cl_mem buf, cl_bool blocking_write, size_t offset, size_t size, const void *ptr, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(buf) { target; }
  parameter(ptr) { in; buffer(size); }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list, 8); }
  parameter(event) { out; element { allocates; } }
  resource(bus_bytes, size);
  record(object_modify);
}

cl_int clEnqueueCopyBuffer(cl_command_queue command_queue, cl_mem src_buffer, cl_mem dst_buffer, size_t src_offset, size_t dst_offset, size_t size, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(dst_buffer) { target; }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list, 8); }
  parameter(event) { out; element { allocates; } }
  resource(device_time, size);
  record(object_modify);
}

cl_int clEnqueueFillBuffer(cl_command_queue command_queue, cl_mem buf, cl_uint pattern, size_t offset, size_t size, cl_uint num_events_in_wait_list, const cl_event *event_wait_list, cl_event *event) {
  async;
  parameter(buf) { target; }
  parameter(event_wait_list) { in; buffer(num_events_in_wait_list, 8); }
  parameter(event) { out; element { allocates; } }
  resource(device_time, size);
  record(object_modify);
}

cl_int clFlush(cl_command_queue command_queue) {
  async;
  record(no_record);
}

cl_int clFinish(cl_command_queue command_queue) {
  sync;
  record(no_record);
}

cl_int clWaitForEvents(cl_uint num_events, const cl_event *event_list) {
  sync;
  parameter(event_list) { in; buffer(num_events, 8); }
  record(no_record);
}

cl_int clGetEventInfo(cl_event event, cl_uint *status) {
  sync;
  parameter(status) { out; element { } }
  record(no_record);
}

cl_int clGetEventProfilingInfo(cl_event event, cl_uint param_name, uint64_t *value) {
  sync;
  parameter(value) { out; element { } }
  record(no_record);
}

cl_int clReleaseEvent(cl_event event) {
  async;
  parameter(event) { deallocates; }
  record(object_dealloc);
}
|}

let mvnc_header =
  {|
/* MVNC: the public API of the simulated Movidius NCSDK silo. */
#define MVNC_OK 0

typedef int mvncStatus;
typedef struct _mvncDevice *mvncDeviceHandle;
typedef struct _mvncGraph *mvncGraphHandle;

mvncStatus mvncGetDeviceName(int index, char *name, unsigned int name_size);
mvncStatus mvncOpenDevice(const char *name, unsigned int name_size, mvncDeviceHandle *device);
mvncStatus mvncCloseDevice(mvncDeviceHandle device);
mvncStatus mvncAllocateGraph(mvncDeviceHandle device, mvncGraphHandle *graph, const void *graph_data, unsigned int graph_data_size);
mvncStatus mvncDeallocateGraph(mvncGraphHandle graph);
mvncStatus mvncLoadTensor(mvncGraphHandle graph, const void *tensor, unsigned int tensor_size);
mvncStatus mvncGetResult(mvncGraphHandle graph, void *result, unsigned int *result_size);
mvncStatus mvncGetGraphOption(mvncGraphHandle graph, int option, int *value);
mvncStatus mvncSetGraphOption(mvncGraphHandle graph, int option, int value);
mvncStatus mvncGetDeviceOption(mvncDeviceHandle device, int option, int *value);
|}

let mvnc_spec =
  {|
api("mvnc");
#include "mvnc_sim.h"

type(mvncStatus) { success(MVNC_OK); }

mvncStatus mvncGetDeviceName(int index, char *name, unsigned int name_size) {
  sync;
  parameter(name) { out; buffer(name_size); }
  record(no_record);
}

mvncStatus mvncOpenDevice(const char *name, unsigned int name_size, mvncDeviceHandle *device) {
  sync;
  parameter(name) { in; buffer(name_size); }
  parameter(device) { out; element { allocates; } }
  record(object_alloc);
}

mvncStatus mvncCloseDevice(mvncDeviceHandle device) {
  sync;
  parameter(device) { deallocates; }
  record(object_dealloc);
}

mvncStatus mvncAllocateGraph(mvncDeviceHandle device, mvncGraphHandle *graph, const void *graph_data, unsigned int graph_data_size) {
  sync;
  parameter(graph) { out; element { allocates; } }
  parameter(graph_data) { in; buffer(graph_data_size); }
  resource(bus_bytes, graph_data_size);
  record(object_alloc);
}

mvncStatus mvncDeallocateGraph(mvncGraphHandle graph) {
  sync;
  parameter(graph) { deallocates; }
  record(object_dealloc);
}

mvncStatus mvncLoadTensor(mvncGraphHandle graph, const void *tensor, unsigned int tensor_size) {
  async;
  parameter(tensor) { in; buffer(tensor_size); }
  resource(bus_bytes, tensor_size);
  record(no_record);
}

mvncStatus mvncGetResult(mvncGraphHandle graph, void *result, unsigned int *result_size) {
  sync;
  parameter(result) { out; buffer(result_size); }
  parameter(result_size) { in_out; element { } }
  record(no_record);
}

mvncStatus mvncGetGraphOption(mvncGraphHandle graph, int option, int *value) {
  sync;
  parameter(value) { out; element { } }
  record(no_record);
}

mvncStatus mvncSetGraphOption(mvncGraphHandle graph, int option, int value) {
  async;
  record(object_modify);
}

mvncStatus mvncGetDeviceOption(mvncDeviceHandle device, int option, int *value) {
  sync;
  parameter(value) { out; element { } }
  record(no_record);
}
|}


let qat_header =
  {|
/* SimQA: the public API of the simulated QuickAssist compression silo. */
#define QA_STATUS_SUCCESS 0
#define QA_DIR_COMPRESS 0
#define QA_DIR_DECOMPRESS 1

typedef int qaStatus;
typedef struct _qaInstance *qaInstanceHandle;
typedef struct _qaSession *qaSessionHandle;
typedef struct _qaCallback *qaCallbackFn;
typedef struct { int ops; int bytes_in; int bytes_out; } qaStatsEx;

qaStatus qaGetNumInstances(int *num_instances);
qaStatus qaStartInstance(int index, qaInstanceHandle *instance);
qaStatus qaStopInstance(qaInstanceHandle instance);
qaStatus qaCreateSession(qaInstanceHandle instance, int direction, int level, qaSessionHandle *session);
qaStatus qaRemoveSession(qaSessionHandle session);
qaStatus qaCompress(qaSessionHandle session, const void *src, unsigned int src_size, void *dst, unsigned int *dst_size);
qaStatus qaDecompress(qaSessionHandle session, const void *src, unsigned int src_size, void *dst, unsigned int *dst_size);
qaStatus qaSubmitCompress(qaSessionHandle session, const void *src, unsigned int src_size, qaCallbackFn callback, int tag);
qaStatus qaGetStats(qaInstanceHandle instance, int *ops, int *bytes);
qaStatus qaGetStatsEx(qaInstanceHandle instance, qaStatsEx *stats);
|}

let qat_spec =
  {|
api("qat");
#include "qa_sim.h"

type(qaStatus) { success(QA_STATUS_SUCCESS); }

qaStatus qaGetNumInstances(int *num_instances) {
  sync;
  parameter(num_instances) { out; element { } }
  record(no_record);
}

qaStatus qaStartInstance(int index, qaInstanceHandle *instance) {
  sync;
  parameter(instance) { out; element { allocates; } }
  record(object_alloc);
}

qaStatus qaStopInstance(qaInstanceHandle instance) {
  sync;
  parameter(instance) { deallocates; }
  record(object_dealloc);
}

qaStatus qaCreateSession(qaInstanceHandle instance, int direction, int level, qaSessionHandle *session) {
  sync;
  parameter(session) { out; element { allocates; } }
  record(object_alloc);
}

qaStatus qaRemoveSession(qaSessionHandle session) {
  sync;
  parameter(session) { deallocates; }
  record(object_dealloc);
}

qaStatus qaCompress(qaSessionHandle session, const void *src, unsigned int src_size, void *dst, unsigned int *dst_size) {
  sync;
  parameter(src) { in; buffer(src_size); }
  parameter(dst) { out; buffer(dst_size); }
  parameter(dst_size) { in_out; element { } }
  resource(bus_bytes, src_size);
  record(no_record);
}

qaStatus qaDecompress(qaSessionHandle session, const void *src, unsigned int src_size, void *dst, unsigned int *dst_size) {
  sync;
  parameter(src) { in; buffer(src_size); }
  parameter(dst) { out; buffer(dst_size); }
  parameter(dst_size) { in_out; element { } }
  resource(bus_bytes, src_size);
  record(no_record);
}

qaStatus qaSubmitCompress(qaSessionHandle session, const void *src, unsigned int src_size, qaCallbackFn callback, int tag) {
  async;
  parameter(src) { in; buffer(src_size); }
  parameter(callback) { callback; }
  resource(bus_bytes, src_size);
  record(no_record);
}

qaStatus qaGetStats(qaInstanceHandle instance, int *ops, int *bytes) {
  sync;
  parameter(ops) { out; element { } }
  parameter(bytes) { out; element { } }
  record(no_record);
}

qaStatus qaGetStatsEx(qaInstanceHandle instance, qaStatsEx *stats) {
  sync;
  record(no_record);
}
|}

let simst_header =
  {|
/* SimST: the public API of the simulated stream-accelerator silo. */
#define ST_SUCCESS 0

typedef int stStatus;
typedef struct _stStream *stStream;
typedef struct _stEvent *stEvent;
typedef struct _stMem *stMem;

stStatus stDeviceGetCount(int *count);
stStatus stStreamCreate(stStream *stream);
stStatus stStreamDestroy(stStream stream);
stStatus stStreamSynchronize(stStream stream);
stStatus stEventCreate(stEvent *event);
stStatus stEventDestroy(stEvent event);
stStatus stEventRecord(stEvent event, stStream stream);
stStatus stEventSynchronize(stEvent event);
stStatus stStreamWaitEvent(stStream stream, stEvent event);
stStatus stMemAlloc(stMem *mem, unsigned int size);
stStatus stMemFree(stMem mem);
stStatus stMemcpyHtoDAsync(stMem dst, const void *src, unsigned int size, stStream stream);
stStatus stMemcpyDtoH(void *dst, unsigned int size, stMem src);
stStatus stLaunchKernel(stStream stream, const char *name, unsigned int name_size, stMem a, stMem b, stMem out, unsigned int n);
stStatus stBatchSubmit(stStream stream, const void *batch, unsigned int batch_size, unsigned int item_size, int *ticket);
stStatus stBatchCollect(stStream stream, int ticket, void *scores, unsigned int scores_size);
|}

let simst_spec =
  {|
api("simst");
#include "simst.h"

type(stStatus) { success(ST_SUCCESS); }

stStatus stDeviceGetCount(int *count) {
  sync;
  parameter(count) { out; element { } }
  record(no_record);
}

stStatus stStreamCreate(stStream *stream) {
  sync;
  parameter(stream) { out; element { allocates; } }
  record(object_alloc);
}

stStatus stStreamDestroy(stStream stream) {
  sync;
  ava_stream(stream);
  parameter(stream) { deallocates; }
  record(object_dealloc);
}

stStatus stStreamSynchronize(stStream stream) {
  sync_on(stream);
  ava_stream(stream);
  record(no_record);
}

stStatus stEventCreate(stEvent *event) {
  sync;
  parameter(event) { out; element { allocates; } }
  record(object_alloc);
}

stStatus stEventDestroy(stEvent event) {
  sync;
  parameter(event) { deallocates; }
  record(object_dealloc);
}

stStatus stEventRecord(stEvent event, stStream stream) {
  async;
  ava_stream(stream);
  record(no_record);
}

stStatus stEventSynchronize(stEvent event) {
  sync_on(event);
  record(no_record);
}

stStatus stStreamWaitEvent(stStream stream, stEvent event) {
  async;
  ava_stream(stream);
  record(no_record);
}

stStatus stMemAlloc(stMem *mem, unsigned int size) {
  sync;
  parameter(mem) { out; element { allocates; } }
  resource(device_memory, size);
  record(object_alloc);
}

stStatus stMemFree(stMem mem) {
  sync;
  parameter(mem) { deallocates; }
  record(object_dealloc);
}

stStatus stMemcpyHtoDAsync(stMem dst, const void *src, unsigned int size, stStream stream) {
  async;
  ava_stream(stream);
  parameter(dst) { target; }
  parameter(src) { in; buffer(size); }
  resource(bus_bytes, size);
  record(no_record);
}

stStatus stMemcpyDtoH(void *dst, unsigned int size, stMem src) {
  sync;
  parameter(dst) { out; buffer(size); }
  resource(bus_bytes, size);
  record(no_record);
}

stStatus stLaunchKernel(stStream stream, const char *name, unsigned int name_size, stMem a, stMem b, stMem out, unsigned int n) {
  async;
  ava_stream(stream);
  parameter(name) { in; buffer(name_size); }
  resource(device_time, n);
  record(no_record);
}

stStatus stBatchSubmit(stStream stream, const void *batch, unsigned int batch_size, unsigned int item_size, int *ticket) {
  sync;
  ava_stream(stream);
  parameter(batch) { in; buffer(batch_size); }
  parameter(ticket) { out; element { } }
  resource(queue_slots, batch_size / item_size);
  resource(bus_bytes, batch_size);
  record(no_record);
}

stStatus stBatchCollect(stStream stream, int ticket, void *scores, unsigned int scores_size) {
  sync_on(stream);
  ava_stream(stream);
  parameter(scores) { out; buffer(scores_size); }
  record(no_record);
}
|}

let resolve_builtin_include = function
  | "cl_sim.h" -> Some simcl_header
  | "mvnc_sim.h" -> Some mvnc_header
  | "qa_sim.h" -> Some qat_header
  | "simst.h" -> Some simst_header
  | _ -> None

(* Parse one of the embedded refined specs; these must always succeed. *)
let load_simcl () =
  match Parser.parse ~resolve_include:resolve_builtin_include simcl_spec with
  | Ok spec -> spec
  | Error e ->
      failwith
        (Printf.sprintf "embedded simcl spec is invalid (line %d): %s"
           e.Parser.line e.Parser.message)

let load_mvnc () =
  match Parser.parse ~resolve_include:resolve_builtin_include mvnc_spec with
  | Ok spec -> spec
  | Error e ->
      failwith
        (Printf.sprintf "embedded mvnc spec is invalid (line %d): %s"
           e.Parser.line e.Parser.message)

let load_qat () =
  match Parser.parse ~resolve_include:resolve_builtin_include qat_spec with
  | Ok spec -> spec
  | Error e ->
      failwith
        (Printf.sprintf "embedded qat spec is invalid (line %d): %s"
           e.Parser.line e.Parser.message)

let load_simst () =
  match Parser.parse ~resolve_include:resolve_builtin_include simst_spec with
  | Ok spec -> spec
  | Error e ->
      failwith
        (Printf.sprintf "embedded simst spec is invalid (line %d): %s"
           e.Parser.line e.Parser.message)
