(** One campaign scenario: assemble a pooled AvA stack, interpret an
    operation trace over the simulated clock, quiesce, and check the
    fleet invariants.

    The interpreter is {e total}: an op whose tenant slot was never
    admitted (or already retired), whose device is dead, or which would
    strand the fleet (killing the last healthy device) is a recorded
    no-op.  Any subsequence of a trace is therefore a valid trace —
    the property seed shrinking relies on.  Runs are deterministic:
    every stochastic choice draws from streams split off
    [sc_seed]. *)

open Ava_sim

type config = {
  sc_devices : int;  (** pool size (>= 2 exercises migration) *)
  sc_placement : Ava_pool.Pool.placement;
  sc_sva : bool;  (** zero-copy data path armed *)
  sc_doorbell : bool;  (** doorbell coalescing on guest rings *)
  sc_cache : int;  (** transfer-cache capacity, 0 = off *)
  sc_faults : string;  (** initial link profile: ["none"] | ["light"] *)
  sc_seed : int64;  (** root of every in-run RNG stream *)
  sc_max_tenants : int;  (** admission cap *)
}

val default_config : config
(** 3 devices, round-robin, everything armed, light faults, seed 42,
    4 tenants. *)

val random_config : Rng.t -> config
(** A random point in the config cube (2-3 devices, placement, SVA /
    doorbell / cache toggles, initial profile). *)

(** The fleet invariants, each checked after quiesce (residency also
    continuously, between ops). *)
type invariant =
  | No_crash  (** no unexpected exception escaped the stack *)
  | Seq_ledger  (** no lost or duplicated replies: every forwarded
                    call answered, no retry budget exhausted *)
  | Conservation  (** executed-call and residency counters conserve
                      across the {!Ava_core.Report} rollup *)
  | Residency  (** retired tenants leave nothing behind: no pool
                   residency, server entry, IOMMU pin or recorder *)
  | Isolation  (** tenants not targeted by device faults, not resident
                   on a killed device, complete correctly *)
  | Obs_twin  (** armed-obs run is bit-identical in virtual time to
                  the disarmed twin *)

val invariant_name : invariant -> string
val invariant_of_name : string -> invariant option
val all_invariants : invariant list

type verdict =
  | Pass
  | Violation of invariant * string  (** which invariant, and how *)
  | Hang of string  (** quiesce deadline expired with work in flight *)

val pp_verdict : Format.formatter -> verdict -> unit

type outcome = {
  oc_verdict : verdict;
  oc_final_ns : Time.t;  (** virtual clock at the end of the run *)
  oc_executed : int;  (** calls executed across all servers *)
  oc_applied : int;  (** ops that were not no-ops *)
}

val run : ?obs:bool -> ?sabotage:bool -> config -> Op.trace -> outcome
(** Interpret the trace.  [obs] arms full latency attribution
    ({!Ava_obs.Obs}); the registry is passive, so the outcome must be
    bit-identical to a disarmed run — {!check_twin} enforces it.
    [sabotage] deliberately breaks the stack (a tenant's server worker
    is crashed mid-workload and never restarted) to prove the
    invariant checks fire — the self-test of the campaign runner. *)

val check_twin : config -> Op.trace -> verdict
(** Run the trace disarmed and obs-armed; [Pass] iff final virtual
    time, executed count and verdict agree (else an {!Obs_twin}
    violation). *)
