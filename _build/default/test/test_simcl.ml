(* Tests for the SimCL silo: API semantics, in-order queues, events,
   built-in kernel correctness and error paths. *)

open Ava_sim
open Ava_simcl
open Ava_simcl.Types

let mib n = n * 1024 * 1024

(* Run [f (module CL)] inside a fresh simulated host. *)
let with_cl ?(timing = Ava_device.Timing.gtx1080) f =
  let e = Engine.create () in
  let gpu = Ava_device.Gpu.create ~timing e in
  let kd = Kdriver.create gpu in
  let cl, st = Native.create kd in
  let result = ref None in
  Engine.spawn e (fun () -> result := Some (f e cl st));
  Engine.run e;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simcl test process stalled"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error %s" (error_to_string e)

let check_err name expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" name (error_to_string expected)
  | Error e ->
      Alcotest.(check string) name (error_to_string expected)
        (error_to_string e)

(* Standard prologue used by most tests. *)
let setup (module CL : Api.S) =
  let p = List.hd (ok (CL.clGetPlatformIDs ())) in
  let d = List.hd (ok (CL.clGetDeviceIDs p Device_gpu)) in
  let ctx = ok (CL.clCreateContext [ d ]) in
  let q = ok (CL.clCreateCommandQueue ctx d ~profiling:true) in
  (p, d, ctx, q)

let i32_bytes l =
  let b = Bytes.create (4 * List.length l) in
  List.iteri (fun i v -> Bytes.set_int32_le b (4 * i) (Int32.of_int v)) l;
  b

let bytes_i32 b =
  List.init (Bytes.length b / 4) (fun i ->
      Int32.to_int (Bytes.get_int32_le b (4 * i)))

let discovery_tests =
  [
    Alcotest.test_case "platform and device enumeration" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let platforms = ok (CL.clGetPlatformIDs ()) in
            Alcotest.(check int) "one platform" 1 (List.length platforms);
            let p = List.hd platforms in
            Alcotest.(check string) "name" "SimCL"
              (ok (CL.clGetPlatformInfo p Platform_name));
            let gpus = ok (CL.clGetDeviceIDs p Device_gpu) in
            Alcotest.(check int) "one gpu" 1 (List.length gpus);
            Alcotest.(check (list int)) "no accelerators" []
              (ok (CL.clGetDeviceIDs p Device_accelerator));
            check_err "bad platform" Invalid_platform
              (CL.clGetDeviceIDs 999 Device_gpu)));
    Alcotest.test_case "device info" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let p, d, _, _ = setup (module CL) in
            ignore p;
            (match ok (CL.clGetDeviceInfo d Device_name) with
            | Info_string s ->
                Alcotest.(check string) "name" "SimCL GTX-1080" s
            | Info_int _ -> Alcotest.fail "expected string");
            match ok (CL.clGetDeviceInfo d Device_global_mem_size) with
            | Info_int n ->
                Alcotest.(check int) "8GiB" (8 * 1024 * mib 1) n
            | Info_string _ -> Alcotest.fail "expected int"));
  ]

let lifecycle_tests =
  [
    Alcotest.test_case "context refcounting" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            ok (CL.clRetainContext ctx);
            Alcotest.(check int) "refs" 2 (ok (CL.clGetContextInfo ctx));
            ok (CL.clReleaseContext ctx);
            ok (CL.clReleaseContext ctx);
            check_err "gone" Invalid_context (CL.clGetContextInfo ctx)));
    Alcotest.test_case "invalid handles rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            check_err "ctx" Invalid_context (CL.clCreateCommandQueue 12345 1 ~profiling:false);
            check_err "queue" Invalid_command_queue (CL.clFinish 12345);
            check_err "mem" Invalid_mem_object (CL.clGetMemObjectInfo 12345);
            check_err "kernel" Invalid_kernel (CL.clReleaseKernel 12345);
            check_err "event" Invalid_event (CL.clGetEventInfo 12345);
            check_err "program" Invalid_program (CL.clBuildProgram 12345 ~options:"")));
    Alcotest.test_case "buffer lifecycle frees device memory" `Quick (fun () ->
        with_cl (fun e (module CL : Api.S) _st ->
            ignore e;
            let _, _, ctx, _ = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:(mib 1)) in
            Alcotest.(check int) "size info" (mib 1)
              (ok (CL.clGetMemObjectInfo m));
            ok (CL.clRetainMemObject m);
            ok (CL.clReleaseMemObject m);
            (* still alive after one release *)
            Alcotest.(check int) "still alive" (mib 1)
              (ok (CL.clGetMemObjectInfo m));
            ok (CL.clReleaseMemObject m);
            check_err "freed" Invalid_mem_object (CL.clGetMemObjectInfo m)));
    Alcotest.test_case "device OOM becomes allocation failure" `Quick
      (fun () ->
        with_cl ~timing:Ava_device.Timing.test_gpu
          (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            check_err "oom" Mem_object_allocation_failure
              (CL.clCreateBuffer ctx ~size:(mib 65))));
    Alcotest.test_case "zero-sized buffer rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            check_err "zero" Invalid_value (CL.clCreateBuffer ctx ~size:0)));
  ]

let program_tests =
  [
    Alcotest.test_case "build and create kernel" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, d, ctx, _ = setup (module CL) in
            let p =
              ok
                (CL.clCreateProgramWithSource ctx
                   ~source:"builtin vec_add; builtin scale")
            in
            ok (CL.clBuildProgram p ~options:"");
            Alcotest.(check string) "log" "build ok"
              (ok (CL.clGetProgramBuildInfo p));
            let k = ok (CL.clCreateKernel p ~name:"vec_add") in
            Alcotest.(check string) "kernel name" "vec_add"
              (ok (CL.clGetKernelInfo k));
            Alcotest.(check int) "wg size" 1024
              (ok (CL.clGetKernelWorkGroupInfo k d));
            check_err "unknown kernel" Invalid_kernel_name
              (CL.clCreateKernel p ~name:"nonexistent")));
    Alcotest.test_case "kernel before build rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            let p =
              ok (CL.clCreateProgramWithSource ctx ~source:"builtin noop")
            in
            check_err "not built" Invalid_program_executable
              (CL.clCreateKernel p ~name:"noop")));
    Alcotest.test_case "bad source fails to build with log" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            let p =
              ok (CL.clCreateProgramWithSource ctx ~source:"builtin no_such")
            in
            check_err "build fails" Build_program_failure
              (CL.clBuildProgram p ~options:"");
            let log = ok (CL.clGetProgramBuildInfo p) in
            Alcotest.(check bool) "log mentions kernel" true
              (String.length log > 0)));
    Alcotest.test_case "synthetic kernel parses" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            let src =
              Builtin.synthetic_source ~name:"bfs_step" ~flops_per_item:12.0
                ~bytes_per_item:16.0
            in
            let p = ok (CL.clCreateProgramWithSource ctx ~source:src) in
            ok (CL.clBuildProgram p ~options:"");
            let k = ok (CL.clCreateKernel p ~name:"bfs_step") in
            Alcotest.(check string) "name" "bfs_step"
              (ok (CL.clGetKernelInfo k))));
    Alcotest.test_case "empty source rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            check_err "empty" Invalid_value
              (CL.clCreateProgramWithSource ctx ~source:"  ")));
  ]

let exec_tests =
  [
    Alcotest.test_case "vec_add end to end" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let n = 256 in
            let a = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
            let b = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
            let out = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
            let av = List.init n (fun i -> i) in
            let bv = List.init n (fun i -> 1000 * i) in
            ignore
              (ok
                 (CL.clEnqueueWriteBuffer q a ~blocking:true ~offset:0
                    ~src:(i32_bytes av) ~wait_list:[] ~want_event:false));
            ignore
              (ok
                 (CL.clEnqueueWriteBuffer q b ~blocking:true ~offset:0
                    ~src:(i32_bytes bv) ~wait_list:[] ~want_event:false));
            let p =
              ok (CL.clCreateProgramWithSource ctx ~source:"builtin vec_add")
            in
            ok (CL.clBuildProgram p ~options:"");
            let k = ok (CL.clCreateKernel p ~name:"vec_add") in
            ok (CL.clSetKernelArg k ~index:0 (Arg_mem a));
            ok (CL.clSetKernelArg k ~index:1 (Arg_mem b));
            ok (CL.clSetKernelArg k ~index:2 (Arg_mem out));
            ignore
              (ok
                 (CL.clEnqueueNDRangeKernel q k ~global_work_size:n
                    ~local_work_size:64 ~wait_list:[] ~want_event:false));
            let data, _ =
              ok
                (CL.clEnqueueReadBuffer q out ~blocking:true ~offset:0
                   ~size:(4 * n) ~wait_list:[] ~want_event:false)
            in
            let expected = List.map2 ( + ) av bv in
            Alcotest.(check (list int)) "sum" expected (bytes_i32 data)));
    Alcotest.test_case "in-order queue: fill then read" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:64) in
            ignore
              (ok
                 (CL.clEnqueueFillBuffer q m ~pattern:'x' ~offset:0 ~size:64
                    ~wait_list:[] ~want_event:false));
            (* Non-blocking fill; the read must still observe it. *)
            let data, _ =
              ok
                (CL.clEnqueueReadBuffer q m ~blocking:true ~offset:0 ~size:64
                   ~wait_list:[] ~want_event:false)
            in
            Alcotest.(check bytes) "filled" (Bytes.make 64 'x') data));
    Alcotest.test_case "copy buffer" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let src = ok (CL.clCreateBuffer ctx ~size:128) in
            let dst = ok (CL.clCreateBuffer ctx ~size:128) in
            let payload = Bytes.init 100 (fun i -> Char.chr (i + 32)) in
            ignore
              (ok
                 (CL.clEnqueueWriteBuffer q src ~blocking:true ~offset:0
                    ~src:payload ~wait_list:[] ~want_event:false));
            ignore
              (ok
                 (CL.clEnqueueCopyBuffer q ~src ~dst ~src_offset:0
                    ~dst_offset:28 ~size:100 ~wait_list:[] ~want_event:false));
            let data, _ =
              ok
                (CL.clEnqueueReadBuffer q dst ~blocking:true ~offset:28
                   ~size:100 ~wait_list:[] ~want_event:false)
            in
            Alcotest.(check bytes) "copied" payload data));
    Alcotest.test_case "non-blocking read completes via event" `Quick
      (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:64) in
            ignore
              (ok
                 (CL.clEnqueueFillBuffer q m ~pattern:'z' ~offset:0 ~size:64
                    ~wait_list:[] ~want_event:false));
            let data, ev =
              ok
                (CL.clEnqueueReadBuffer q m ~blocking:false ~offset:0 ~size:64
                   ~wait_list:[] ~want_event:true)
            in
            let ev = Option.get ev in
            ok (CL.clWaitForEvents [ ev ]);
            Alcotest.(check bytes) "data after wait" (Bytes.make 64 'z') data;
            Alcotest.(check bool) "status complete" true
              (ok (CL.clGetEventInfo ev) = Complete)));
    Alcotest.test_case "unset kernel arg rejected at enqueue" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let p =
              ok (CL.clCreateProgramWithSource ctx ~source:"builtin vec_add")
            in
            ok (CL.clBuildProgram p ~options:"");
            let k = ok (CL.clCreateKernel p ~name:"vec_add") in
            let m = ok (CL.clCreateBuffer ctx ~size:64) in
            ok (CL.clSetKernelArg k ~index:0 (Arg_mem m));
            ok (CL.clSetKernelArg k ~index:2 (Arg_mem m));
            (* index 1 missing *)
            check_err "missing arg" Invalid_arg_value
              (CL.clEnqueueNDRangeKernel q k ~global_work_size:16
                 ~local_work_size:1 ~wait_list:[] ~want_event:false)));
    Alcotest.test_case "stale mem handle in setarg rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, _ = setup (module CL) in
            let p =
              ok (CL.clCreateProgramWithSource ctx ~source:"builtin noop")
            in
            ok (CL.clBuildProgram p ~options:"");
            let k = ok (CL.clCreateKernel p ~name:"noop") in
            check_err "stale" Invalid_arg_value
              (CL.clSetKernelArg k ~index:0 (Arg_mem 4242))));
    Alcotest.test_case "out of range transfer rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:64) in
            check_err "read oob" Invalid_value
              (CL.clEnqueueReadBuffer q m ~blocking:true ~offset:60 ~size:10
                 ~wait_list:[] ~want_event:false);
            check_err "write oob" Invalid_value
              (CL.clEnqueueWriteBuffer q m ~blocking:true ~offset:0
                 ~src:(Bytes.create 100) ~wait_list:[] ~want_event:false)));
    Alcotest.test_case "clFinish drains the queue" `Quick (fun () ->
        with_cl (fun e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:(mib 4)) in
            let t0 = Engine.now e in
            ignore
              (ok
                 (CL.clEnqueueWriteBuffer q m ~blocking:false ~offset:0
                    ~src:(Bytes.create (mib 4)) ~wait_list:[]
                    ~want_event:false));
            let submitted = Engine.now e - t0 in
            ok (CL.clFinish q);
            let finished = Engine.now e - t0 in
            (* Non-blocking write returns fast; 4MiB over PCIe ~ 350us. *)
            Alcotest.(check bool) "enqueue fast" true
              (submitted < Time.us 100);
            Alcotest.(check bool) "finish waits for dma" true
              (finished > Time.us 300)));
  ]

let event_tests =
  [
    Alcotest.test_case "profiling timestamps ordered" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let p =
              ok (CL.clCreateProgramWithSource ctx ~source:"builtin noop")
            in
            ok (CL.clBuildProgram p ~options:"");
            let k = ok (CL.clCreateKernel p ~name:"noop") in
            let ev =
              Option.get
                (ok
                   (CL.clEnqueueNDRangeKernel q k ~global_work_size:1024
                      ~local_work_size:64 ~wait_list:[] ~want_event:true))
            in
            ok (CL.clWaitForEvents [ ev ]);
            let queued = ok (CL.clGetEventProfilingInfo ev Profiling_queued) in
            let start = ok (CL.clGetEventProfilingInfo ev Profiling_start) in
            let stop = ok (CL.clGetEventProfilingInfo ev Profiling_end) in
            Alcotest.(check bool) "queued <= start" true (queued <= start);
            Alcotest.(check bool) "start < end" true (start < stop)));
    Alcotest.test_case "profiling unavailable before completion" `Quick
      (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, _, ctx, q = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:(mib 8)) in
            let _, ev =
              ok
                (CL.clEnqueueReadBuffer q m ~blocking:false ~offset:0
                   ~size:(mib 8) ~wait_list:[] ~want_event:true)
            in
            let ev = Option.get ev in
            check_err "not yet" Profiling_info_not_available
              (CL.clGetEventProfilingInfo ev Profiling_end);
            ok (CL.clWaitForEvents [ ev ])));
    Alcotest.test_case "wait list gates execution across queues" `Quick
      (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            let _, d, ctx, q1 = setup (module CL) in
            let q2 = ok (CL.clCreateCommandQueue ctx d ~profiling:false) in
            let m = ok (CL.clCreateBuffer ctx ~size:64 ) in
            let ev =
              Option.get
                (ok
                   (CL.clEnqueueFillBuffer q1 m ~pattern:'a' ~offset:0
                      ~size:64 ~wait_list:[] ~want_event:true))
            in
            (* q2's read waits on q1's fill via the event wait list. *)
            let data, _ =
              ok
                (CL.clEnqueueReadBuffer q2 m ~blocking:true ~offset:0 ~size:64
                   ~wait_list:[ ev ] ~want_event:false)
            in
            Alcotest.(check bytes) "ordered across queues"
              (Bytes.make 64 'a') data));
    Alcotest.test_case "empty wait-for-events rejected" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) _st ->
            check_err "empty" Invalid_value (CL.clWaitForEvents [])));
    Alcotest.test_case "event release removes handle" `Quick (fun () ->
        with_cl (fun _e (module CL : Api.S) st ->
            let _, _, ctx, q = setup (module CL) in
            let m = ok (CL.clCreateBuffer ctx ~size:64) in
            let ev =
              Option.get
                (ok
                   (CL.clEnqueueFillBuffer q m ~pattern:'b' ~offset:0 ~size:64
                      ~wait_list:[] ~want_event:true))
            in
            ok (CL.clWaitForEvents [ ev ]);
            let before = Native.live_events st in
            ok (CL.clReleaseEvent ev);
            Alcotest.(check int) "one fewer" (before - 1)
              (Native.live_events st);
            check_err "gone" Invalid_event (CL.clGetEventInfo ev)));
  ]

let isolation_tests =
  [
    Alcotest.test_case "two instances have disjoint namespaces" `Quick
      (fun () ->
        let e = Engine.create () in
        let gpu = Ava_device.Gpu.create e in
        let kd = Kdriver.create gpu in
        let cl1, _ = Native.create kd in
        let cl2, _ = Native.create kd in
        let module CL1 = (val cl1 : Api.S) in
        let module CL2 = (val cl2 : Api.S) in
        let r = ref None in
        Engine.spawn e (fun () ->
            let _, _, ctx1, _ = setup (module CL1) in
            let m1 = ok (CL1.clCreateBuffer ctx1 ~size:64) in
            (* The other process cannot see instance 1's handles. *)
            r := Some (CL2.clGetMemObjectInfo m1));
        Engine.run e;
        match !r with
        | Some (Error Invalid_mem_object) -> ()
        | Some (Ok _) -> Alcotest.fail "isolation violated"
        | _ -> Alcotest.fail "unexpected");
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random i32 vectors add correctly" ~count:30
         QCheck.(list_of_size Gen.(1 -- 64) (int_range (-10000) 10000))
         (fun xs ->
           let n = List.length xs in
           with_cl (fun _e (module CL : Api.S) _st ->
               let _, _, ctx, q = setup (module CL) in
               let a = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
               let b = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
               let out = ok (CL.clCreateBuffer ctx ~size:(4 * n)) in
               ignore
                 (ok
                    (CL.clEnqueueWriteBuffer q a ~blocking:true ~offset:0
                       ~src:(i32_bytes xs) ~wait_list:[] ~want_event:false));
               ignore
                 (ok
                    (CL.clEnqueueWriteBuffer q b ~blocking:true ~offset:0
                       ~src:(i32_bytes xs) ~wait_list:[] ~want_event:false));
               let p =
                 ok
                   (CL.clCreateProgramWithSource ctx
                      ~source:"builtin vec_add")
               in
               ok (CL.clBuildProgram p ~options:"");
               let k = ok (CL.clCreateKernel p ~name:"vec_add") in
               ok (CL.clSetKernelArg k ~index:0 (Arg_mem a));
               ok (CL.clSetKernelArg k ~index:1 (Arg_mem b));
               ok (CL.clSetKernelArg k ~index:2 (Arg_mem out));
               ignore
                 (ok
                    (CL.clEnqueueNDRangeKernel q k ~global_work_size:n
                       ~local_work_size:1 ~wait_list:[] ~want_event:false));
               let data, _ =
                 ok
                   (CL.clEnqueueReadBuffer q out ~blocking:true ~offset:0
                      ~size:(4 * n) ~wait_list:[] ~want_event:false)
               in
               bytes_i32 data = List.map (fun x -> 2 * x) xs)));
  ]

let () =
  Alcotest.run "ava_simcl"
    [
      ("discovery", discovery_tests);
      ("lifecycle", lifecycle_tests);
      ("programs", program_tests);
      ("execution", exec_tests);
      ("events", event_tests);
      ("isolation", isolation_tests);
    ]
