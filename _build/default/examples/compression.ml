(* The §5 future-work demo: a third accelerator API (QuickAssist-style
   compression) virtualized by the same machinery — including QAT's
   native submit/completion-callback usage model, whose callbacks cross
   the remoting stack as server-to-guest upcalls.

     dune exec examples/compression.exe *)

open Ava_sim
open Ava_simqa.Types
open Ava_core

let ok = function
  | Ok v -> v
  | Error s -> failwith (status_to_string s)

let () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () ->
      let host = Host.create_qa_host engine in
      let guest = Host.add_qa_vm host ~name:"compress-vm" in
      let module QA = (val guest.Host.qg_api) in
      let inst = ok (QA.qaStartInstance ~index:0) in
      let session = ok (QA.qaCreateSession inst Dir_compress ~level:6) in

      (* Synchronous offload. *)
      let payload =
        Bytes.concat Bytes.empty
          (List.init 64 (fun i -> Bytes.make 1024 (Char.chr (65 + (i mod 8)))))
      in
      let t0 = Engine.now engine in
      let packed = ok (QA.qaCompress session ~src:payload) in
      Fmt.pr "synchronous offload: %d B -> %d B (%.1fx) in %s@."
        (Bytes.length payload) (Bytes.length packed)
        (float_of_int (Bytes.length payload)
        /. float_of_int (Bytes.length packed))
        (Time.to_string (Engine.now engine - t0));

      (* Asynchronous pipeline with completion callbacks (upcalls). *)
      let completed = ref 0 in
      let t1 = Engine.now engine in
      for tag = 1 to 8 do
        ok
          (QA.qaSubmitCompress session ~src:payload ~tag
             ~callback:(fun ~tag out ->
               incr completed;
               Fmt.pr "  upcall: job %d done, %d B compressed@." tag
                 (Bytes.length out)))
      done;
      Fmt.pr "8 jobs submitted in %s (guest did not wait)@."
        (Time.to_string (Engine.now engine - t1));
      (* Wait for the pipeline to drain. *)
      Engine.delay (Time.ms 5);
      Fmt.pr "pipeline drained: %d/8 completion upcalls after %s@."
        !completed
        (Time.to_string (Engine.now engine - t1));
      let ops, bytes_in = ok (QA.qaGetStats inst) in
      Fmt.pr "device stats: %d operations, %d input bytes@." ops bytes_in);
  Engine.run engine
