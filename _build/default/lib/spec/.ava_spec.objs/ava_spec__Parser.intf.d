lib/spec/parser.mli: Ast
