(* VM migration: a guest fills device buffers, is migrated to a second
   GPU via record/replay, and keeps computing with its old handles.

     dune exec examples/migration_demo.exe *)

open Ava_sim
open Ava_simcl.Types
open Ava_core

let ok = function
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let () =
  let engine = Engine.create () in
  Engine.spawn engine (fun () ->
      let host = Host.create_cl_host engine in
      let guest = Host.add_cl_vm host ~name:"mobile-vm" in
      let vm_id = Ava_hv.Vm.id guest.Host.g_vm in
      let module CL = (val guest.Host.g_api) in
      let platform = List.hd (ok (CL.clGetPlatformIDs ())) in
      let device = List.hd (ok (CL.clGetDeviceIDs platform Device_gpu)) in
      let ctx = ok (CL.clCreateContext [ device ]) in
      let queue = ok (CL.clCreateCommandQueue ctx device ~profiling:false) in
      (* Build device state worth migrating. *)
      let mem = ok (CL.clCreateBuffer ctx ~size:(1024 * 1024)) in
      let secret = Bytes.init 1024 (fun i -> Char.chr (i * 7 land 0xff)) in
      ignore
        (ok
           (CL.clEnqueueWriteBuffer queue mem ~blocking:true ~offset:4096
              ~src:secret ~wait_list:[] ~want_event:false));
      let program =
        ok (CL.clCreateProgramWithSource ctx ~source:"builtin xor_bytes")
      in
      ok (CL.clBuildProgram program ~options:"");
      let kernel = ok (CL.clCreateKernel program ~name:"xor_bytes") in
      ok (CL.clFinish queue);
      Fmt.pr "guest state: 1 context, 1 queue, 1 buffer (1MiB), 1 kernel@.";

      (* Migrate to a brand-new GPU ("destination host"). *)
      let dest_gpu = Ava_device.Gpu.create engine in
      let dest_kd = Ava_simcl.Kdriver.create dest_gpu in
      let before = Engine.now engine in
      let report = Migration.migrate host ~vm_id ~dest_kd in
      Fmt.pr "migrated at t=%s: %a@."
        (Time.to_string before)
        Migration.pp_report report;

      (* The guest continues, unaware: same handles, new silicon. *)
      let back, _ =
        ok
          (CL.clEnqueueReadBuffer queue mem ~blocking:true ~offset:4096
             ~size:1024 ~wait_list:[] ~want_event:false)
      in
      assert (Bytes.equal back secret);
      ok (CL.clSetKernelArg kernel ~index:0 (Arg_mem mem));
      ok (CL.clSetKernelArg kernel ~index:1 (Arg_mem mem));
      ok (CL.clSetKernelArg kernel ~index:2 (Arg_int 0x5c));
      ignore
        (ok
           (CL.clEnqueueNDRangeKernel queue kernel ~global_work_size:1024
              ~local_work_size:64 ~wait_list:[] ~want_event:false));
      ok (CL.clFinish queue);
      Fmt.pr "post-migration: data intact, kernels still launch — handles \
              survived.@.";
      Fmt.pr "destination GPU executed %d kernels@."
        (Ava_device.Gpu.kernels_executed dest_gpu));
  Engine.run engine
