lib/sim/heap.mli:
