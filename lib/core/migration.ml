(* VM migration for SimCL guests (§4.3).

   Procedure (the guest quiesces first, e.g. with clFinish):
   1. suspend the VM's API-server worker;
   2. synthesize reads of all live device buffers into host memory;
   3. stand up a fresh silo state on the destination device and replay
      the recorded calls (global config, live allocations and their
      modifications), re-binding each object to its original virtual id
      so guest-held handles stay valid;
   4. restore buffer contents;
   5. resume the worker.

   The guest library never notices: its handles are virtual ids whose
   host bindings were rebuilt underneath it. *)

module Server = Ava_remoting.Server
module Migrate = Ava_remoting.Migrate
module Message = Ava_remoting.Message
module Wire = Ava_remoting.Wire

open Ava_sim

type report = {
  pause_ns : Time.t;  (** wall (virtual) time the VM was suspended *)
  replayed_calls : int;
  buffers_restored : int;
  bytes_copied : int;  (** snapshot + restore volume *)
  log_recorded : int;  (** calls ever recorded for this VM *)
  log_pruned : int;  (** entries dropped by object tracking *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "pause=%a replayed=%d buffers=%d copied=%dB recorded=%d pruned=%d"
    Time.pp r.pause_ns r.replayed_calls r.buffers_restored r.bytes_copied
    r.log_recorded r.log_pruned

(* Live buffers: clCreateBuffer allocations still in the log, with their
   sizes recovered from the recorded arguments. *)
let live_buffers recorder =
  List.filter_map
    (fun (r : Migrate.recorded) ->
      if String.equal r.Migrate.rc_fn "clCreateBuffer" then
        match (r.Migrate.rc_primary, r.Migrate.rc_args) with
        | Some vid, [ _ctx; _flags; Wire.I64 size; _err ] ->
            Some (vid, Int64.to_int size)
        | _ -> None
      else None)
    (Migrate.replay_log recorder)

(* Must run inside a simulation process. *)
let migrate (host : Host.cl_host) ~vm_id ~dest_kd =
  let engine = host.Host.engine in
  let recorder =
    match Host.recorder host ~vm_id with
    | Some r -> r
    | None -> invalid_arg "Migration.migrate: unknown vm"
  in
  let ctx =
    match Server.vm_ctx host.Host.server ~vm_id with
    | Some c -> c
    | None -> invalid_arg "Migration.migrate: vm not attached to server"
  in
  let old_state =
    match Server.vm_state host.Host.server ~vm_id with
    | Some s -> s
    | None -> invalid_arg "Migration.migrate: vm has no server state"
  in
  let started = Engine.now engine in
  Server.pause_vm host.Host.server ~vm_id;
  (* The transfer-cache content store belongs to the source silo's
     front-end: it does not follow the VM.  Flush it; the guest's stale
     refs heal transparently through the cache-miss NAK/resend path. *)
  Server.flush_cache host.Host.server ~vm_id;

  (* 2. Snapshot: synthesized device-to-host copies of live buffers. *)
  let bytes_copied = ref 0 in
  let snapshot =
    List.filter_map
      (fun (vid, size) ->
        match Server.Ctx.resolve ctx vid with
        | None -> None
        | Some host_mem -> (
            match
              Ava_simcl.Native.find_mem old_state.Cl_handlers.native host_mem
            with
            | None -> None
            | Some buf ->
                let data =
                  Ava_simcl.Kdriver.read_buffer host.Host.kd ~buf ~offset:0
                    ~len:size
                in
                bytes_copied := !bytes_copied + size;
                Some (vid, data)))
      (live_buffers recorder)
  in

  (* 3. Fresh silo on the destination; replay with id re-binding.
     Recording is suspended so the replay doesn't re-record itself. *)
  Hashtbl.remove host.Host.recorders vm_id;
  let new_state = Cl_handlers.make_state dest_kd ~vm_id in
  ignore (Server.replace_state host.Host.server ~vm_id new_state);
  Server.Ctx.clear ctx;
  let replayed = ref 0 in
  List.iter
    (fun (r : Migrate.recorded) ->
      let call =
        {
          Message.call_seq = 0;
          call_vm = vm_id;
          call_fn = r.Migrate.rc_fn;
          call_args = r.Migrate.rc_args;
        }
      in
      let _status, _ret, _outs =
        Server.execute_direct host.Host.server ~vm_id call
      in
      incr replayed;
      (* Re-bind the re-created object to its original virtual id. *)
      match (r.Migrate.rc_class, r.Migrate.rc_primary) with
      | Ava_spec.Ast.Object_alloc, Some orig_vid ->
          let fresh_vid = Server.Ctx.last_fresh ctx in
          if fresh_vid <> orig_vid then begin
            match Server.Ctx.resolve ctx fresh_vid with
            | Some host_h ->
                Server.Ctx.forget ctx fresh_vid;
                Server.Ctx.bind ctx ~guest:orig_vid ~host:host_h
            | None -> ()
          end
      | _ -> ())
    (Migrate.replay_log recorder);
  Hashtbl.replace host.Host.recorders vm_id recorder;

  (* 4. Restore buffer contents on the destination device. *)
  let restored = ref 0 in
  List.iter
    (fun (vid, data) ->
      match Server.Ctx.resolve ctx vid with
      | None -> ()
      | Some host_mem -> (
          match
            Ava_simcl.Native.find_mem new_state.Cl_handlers.native host_mem
          with
          | None -> ()
          | Some buf ->
              Ava_simcl.Kdriver.write_buffer dest_kd ~buf ~offset:0 ~src:data;
              bytes_copied := !bytes_copied + Bytes.length data;
              incr restored))
    snapshot;

  (* 5. Resume. *)
  Server.resume_vm host.Host.server ~vm_id;
  {
    pause_ns = Engine.now engine - started;
    replayed_calls = !replayed;
    buffers_restored = !restored;
    bytes_copied = !bytes_copied;
    log_recorded = Migrate.recorded_count recorder;
    log_pruned = Migrate.pruned_count recorder;
  }
