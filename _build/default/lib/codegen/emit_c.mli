(** CAvA backend, part 2: emit C-like source artifacts.

    The guest-library and API-server sources CAvA would hand to a C
    toolchain.  In this reproduction the OCaml runtime executes the
    equivalent {!Plan} directly, so the emitted text is a demonstration
    artifact — but faithful enough to measure the paper's automation
    claims: how many lines the developer did {e not} write. *)

open Ava_spec.Ast

val guest_library : api_spec -> string
val api_server : api_spec -> string
val guest_driver : api_spec -> string

val count_lines : string -> int

(** Everything CAvA emits for one API, with line counts. *)
type artifacts = {
  art_guest_library : string;
  art_api_server : string;
  art_guest_driver : string;
  art_total_loc : int;
}

val generate : api_spec -> artifacts
