lib/spec/validate.ml: Ast Fmt List Printf String
