lib/codegen/plan.mli: Ava_spec
