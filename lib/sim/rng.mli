(** Deterministic splitmix64 generator.

    Every stochastic choice in the simulator draws from an explicit
    [Rng.t] so that experiments replay exactly given the same seed. *)

type t

val create : int64 -> t
val copy : t -> t

val next : t -> int64
(** The next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound]: uniform in [0, bound). *)

val bool : t -> bool

val split : t -> t
(** An independent stream (for per-VM or per-device streams). *)

val exponential_ns : t -> mean_ns:int -> Time.t
(** Exponentially distributed duration with the given mean. *)

val uniform_ns : t -> lo:Time.t -> hi:Time.t -> Time.t
(** Uniform duration in [lo, hi]. *)

val pareto : t -> alpha:float -> xm:float -> float
(** Pareto-distributed value with tail index [alpha] and scale (minimum)
    [xm]: P(X > x) = (xm / x)^alpha.  Heavy-tailed session lengths. *)
