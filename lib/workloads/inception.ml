(* Inception Net v3 on the Movidius NCS (Figure 5's rightmost bar).

   The layer schedule mirrors the published architecture: a convolutional
   stem, 11 inception blocks and a classifier — 48 weighted layers,
   ~5.7 GFLOPs per 299x299x3 inference, a ~90 MB graph file, 1000-way
   output.  The NCSDK usage pattern is LoadTensor / GetResult pairs over
   one allocated graph. *)

open Ava_simnc.Types

exception Api_failure of string

let ok = function
  | Ok v -> v
  | Error s -> raise (Api_failure (status_to_string s))

(* Per-layer multiply-accumulate counts (FLOPs), coarsely following the
   Inception v3 profile: heavy stem convolutions, tapering blocks. *)
let layer_flops =
  let stem = [ 0.35e9; 0.45e9; 0.30e9; 0.25e9; 0.20e9 ] in
  let blocks =
    List.concat_map
      (fun scale ->
        [ 0.18e9 *. scale; 0.14e9 *. scale; 0.12e9 *. scale; 0.10e9 *. scale ])
      [ 1.4; 1.3; 1.2; 1.1; 1.0; 0.9; 0.85; 0.8; 0.75; 0.7; 0.65 ]
  in
  let classifier = [ 0.05e9; 0.02e9 ] in
  stem @ blocks @ classifier

let graph_bytes = 90 * 1024 * 1024
let input_bytes = 299 * 299 * 3
let output_bytes = 1000 * 4

let graph_data () =
  Ava_simnc.Graphdef.encode ~total_bytes:graph_bytes
    { Ava_simnc.Graphdef.layer_flops; output_bytes }

(* Run [inferences] end to end: open stick, upload graph, stream
   inferences, tear down. *)
let run ?(inferences = 20) (module NC : Ava_simnc.Api.S) =
  let name = ok (NC.mvncGetDeviceName ~index:0) in
  let dev = ok (NC.mvncOpenDevice ~name) in
  let graph = ok (NC.mvncAllocateGraph dev ~graph_data:(graph_data ())) in
  (* Deterministic payload: the simulator's virtual time (and the
     transfer cache's digests) must not depend on uninitialized memory. *)
  let input = Bytes.make input_bytes '\000' in
  for _ = 1 to inferences do
    ok (NC.mvncLoadTensor graph ~tensor:input);
    ignore (ok (NC.mvncGetResult graph))
  done;
  ok (NC.mvncDeallocateGraph graph);
  ok (NC.mvncCloseDevice dev)
