lib/remoting/message.mli: Format Wire
