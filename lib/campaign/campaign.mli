(** The campaign runner: a budgeted loop of randomized scenarios with
    violation shrinking and a replayable regression corpus.

    Each iteration derives an independent RNG stream from the campaign
    seed, draws a random stack configuration and op trace, runs the
    scenario and checks the fleet invariants; every [twin_every]-th
    clean iteration additionally re-runs the trace with observability
    armed and demands a bit-identical outcome.  A violating trace is
    shrunk ({!Shrink.minimize}) to a minimal reproducer under the
    same-invariant oracle and, when [corpus_dir] is given, recorded as
    a corpus file that {!replay} (and the regression suite) can run
    back deterministically. *)

type violation_report = {
  vr_iteration : int;
  vr_config : Scenario.config;
  vr_invariant : string;
  vr_detail : string;  (** detail of the original (unshrunk) verdict *)
  vr_trace : Op.trace;  (** the shrunk reproducer *)
  vr_original_len : int;  (** op count before shrinking *)
  vr_file : string option;  (** corpus path, when recorded *)
}

type summary = {
  cs_seed : int64;
  cs_budget : int;
  cs_iterations : int;  (** iterations actually run *)
  cs_applied : int;  (** ops applied across all iterations *)
  cs_twin_checks : int;
  cs_violations : violation_report list;  (** oldest first *)
}

val run :
  ?log:(string -> unit) ->
  ?corpus_dir:string ->
  ?twin_every:int ->
  ?max_ops:int ->
  ?stop_after:int ->
  seed:int64 ->
  budget:int ->
  unit ->
  summary
(** Run [budget] iterations.  [twin_every] (default 16) paces the
    armed-obs twin runs; [max_ops] (default 30) bounds generated trace
    length; [stop_after] (default 5) ends the campaign early once that
    many violations have been recorded; [log] receives one progress
    line per event (violations, shrink results). *)

val summary_json : summary -> Ava_obs.Json.t
(** Deterministic JSON rollup (for the CI artifact). *)

(** {1 Corpus} *)

val save :
  path:string ->
  config:Scenario.config ->
  invariant:string ->
  detail:string ->
  Op.trace ->
  unit
(** Write one corpus file (stable text format, see [test/corpus/]). *)

val load :
  string -> (Scenario.config * string * Op.trace, string) result
(** Parse a corpus file back into (config, recorded invariant name,
    trace). *)

val replay : string -> (Scenario.outcome, string) result
(** [load] then run — the regression path: a corpus file recorded
    against a since-fixed bug must replay to [Pass]. *)

(** {1 Self-test} *)

val self_test : ?seed:int64 -> unit -> Scenario.outcome
(** Run a deliberately sabotaged scenario (a worker crashed
    mid-workload, never restarted).  The invariant checks must return
    a non-[Pass] verdict; a [Pass] here means the harness is blind and
    its green campaigns are worthless. *)
