(** The one reader of the [AVA_CHAOS_SEED] environment variable.

    Every chaos-flavoured suite (transport faults, device faults, pool
    evacuation, scenario campaigns) perturbs its schedule from this
    variable so CI can sweep a seed matrix over the same binaries.
    Parsing lives here once; each suite keeps its historical default by
    passing it explicitly. *)

val seed : default:int -> int
(** The seed as an [int] ([int_of_string]); [default] when the variable
    is unset.  @raise Failure on a malformed value, as the historical
    per-suite parsers did. *)

val seed64 : default:int64 -> int64
(** The seed as an [int64] ([Int64.of_string]); [default] when unset. *)
