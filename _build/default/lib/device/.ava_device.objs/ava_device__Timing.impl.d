lib/device/timing.ml: Ava_sim Time
