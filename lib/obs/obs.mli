(** Per-call latency attribution for the remoting path.

    A span is opened when the guest stub accepts a call and closed when
    the reply (or a synthesized failure) reaches the caller.  The stub,
    router and server stamp {!type-mark}s on the live span; closing it
    slices the open→close interval into {!type-phase} durations which
    feed per-(VM × API × phase) log-bucketed histograms ({!Hist}).

    The registry is purely passive: it never calls [Engine.delay] or
    otherwise touches virtual time, so arming it leaves the simulation
    timing bit-identical to a disarmed run. *)

open Ava_sim

(** One slice of a forwarded call's life, in pipeline order. *)
type phase =
  | P_marshal  (** guest-side argument marshalling *)
  | P_stub_queue  (** waiting in the stub batch / hold queue *)
  | P_doorbell
      (** waiting for the coalesced ring doorbell to be rung (only
          stamped when the transport's doorbell batching is armed) *)
  | P_transport  (** guest → router hop *)
  | P_router_queue  (** router policing + WFQ wait *)
  | P_server_queue  (** router → server hop + dispatch overhead *)
  | P_execute  (** device execution under the handler *)
  | P_reply_transport  (** server → guest reply hop *)
  | P_unmarshal  (** guest-side reply decode + wakeup *)

val phases : phase list
(** All phases, in pipeline order. *)

val phase_name : phase -> string

(** Timestamps stamped by the stack; each ends one phase.  Marks are
    first-write-wins so watchdog resends cannot rewind a span, and any
    missing mark folds its phase into the next stamped one. *)
type mark =
  | M_marshal_done
  | M_sent
  | M_doorbell
  | M_router_in
  | M_dispatched
  | M_exec_start
  | M_exec_end
  | M_reply_recv

type span = {
  sp_vm : int;
  sp_seq : int;
  sp_fn : string;
  sp_open : Time.t;
  sp_marks : Time.t array;  (** indexed by mark; -1 = never stamped *)
  mutable sp_close : Time.t;  (** -1 while still open *)
  mutable sp_status : int;
  mutable sp_device : int;
      (** pool device that executed the call; -1 outside a pooled host *)
}

val mark_index : mark -> int
val mark_phase : mark -> phase

type t

val create : ?retain:int -> unit -> t
(** [retain] bounds how many closed spans are kept for trace export
    (default 65536, oldest dropped first; [0] keeps none). *)

(** {1 Span lifecycle} *)

val span_open : t -> vm:int -> seq:int -> fn:string -> at:Time.t -> unit
(** No-op if a span for [(vm, seq)] is already live (e.g. a retry). *)

val mark : t -> vm:int -> seq:int -> mark -> at:Time.t -> unit
(** No-op on unknown spans and on already-stamped marks. *)

val set_device : t -> vm:int -> seq:int -> device:int -> unit
(** Attribute the live span to a pool device.  First write wins, like
    marks; no-op on unknown spans. *)

val span_close : t -> vm:int -> seq:int -> status:int -> at:Time.t -> unit
(** Records phase durations and the end-to-end total, then retains the
    span.  No-op on unknown spans. *)

(** {1 Counters and gauges} *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int

val counters : t -> (string * int) list
(** Sorted by name. *)

val in_flight : t -> int
(** Number of currently-open spans. *)

val spans_opened : t -> int
val spans_closed : t -> int
val spans_failed : t -> int
(** Spans closed with a non-zero status. *)

val retain_dropped : t -> int

(** {1 Read-out} *)

val spans : t -> span list
(** Retained closed spans, oldest first. *)

val series : t -> ((int * string * phase) * Hist.summary) list
(** Per-(vm, api, phase) summaries, deterministically sorted. *)

val raw_series : t -> ((int * string * phase) * Hist.t) list
(** Same order as {!series} but exposing the live histograms, for
    exporters that need bucket counts. *)

val totals : t -> ((int * string) * Hist.summary) list
(** Per-(vm, api) end-to-end summaries, deterministically sorted. *)

val raw_totals : t -> ((int * string) * Hist.t) list

val phase_summaries : t -> (phase * Hist.summary) list
(** Summaries merged across VMs and APIs, one per phase, in pipeline
    order.  Phases with no samples report {!Hist.empty_summary}. *)

val total_summary : t -> Hist.summary
(** End-to-end summary merged across VMs and APIs. *)

val vm_totals : t -> (int * Hist.summary) list
(** Per-VM end-to-end summaries merged across APIs, sorted by vm id —
    the per-tenant latency read-out (cluster p50/p99 reporting). *)
