(* Specification validation: what must hold before CAvA will generate a
   stack.

   Failed checks are the difference between a *preliminary* spec (fresh
   from inference, possibly incomplete) and a *refined* one the developer
   has signed off. *)

open Ast

type issue = { fn : string; what : string }

let pp_issue ppf i = Fmt.pf ppf "%s: %s" i.fn i.what

let integer_param fn pname =
  List.find_opt (fun p -> String.equal p.p_name pname) fn.f_params

let check_expr fn what e issues =
  List.fold_left
    (fun issues pname ->
      match integer_param fn pname with
      | None ->
          { fn = fn.f_name;
            what = Printf.sprintf "%s references unknown parameter %S" what pname }
          :: issues
      | Some p -> (
          match p.p_kind with
          | Scalar | Handle | Callback -> issues
          (* A C idiom: size passed via an in/in-out pointer
             (e.g. [unsigned int *result_size]). *)
          | Element _ when p.p_direction <> Out -> issues
          | Buffer _ | Element _ | Struct_ptr _ | Unknown ->
              {
                fn = fn.f_name;
                what =
                  Printf.sprintf "%s references non-scalar parameter %S" what
                    pname;
              }
              :: issues))
    issues (expr_params e)

let check_fn spec fn =
  let issues = [] in
  (* 1. No unknown parameter kinds. *)
  let issues =
    List.fold_left
      (fun issues p ->
        match p.p_kind with
        | Unknown ->
            {
              fn = fn.f_name;
              what =
                Printf.sprintf "parameter %S has unresolved kind" p.p_name;
            }
            :: issues
        | _ -> issues)
      issues fn.f_params
  in
  (* 2. Buffer length expressions are well-formed. *)
  let issues =
    List.fold_left
      (fun issues p ->
        match p.p_kind with
        | Buffer { len; _ } ->
            check_expr fn
              (Printf.sprintf "buffer length of %S" p.p_name)
              len issues
        | _ -> issues)
      issues fn.f_params
  in
  (* 3. Resource estimates are well-formed. *)
  let issues =
    List.fold_left
      (fun issues (rname, e) ->
        check_expr fn (Printf.sprintf "resource estimate %S" rname) e issues)
      issues fn.f_resources
  in
  (* 4. Conditional synchrony refers to a real scalar parameter and a
        known constant. *)
  let issues =
    match fn.f_sync with
    | Sync | Async -> issues
    | Sync_on { sync_param } -> (
        (* The completion object must be a handle the server can key the
           reply on. *)
        match integer_param fn sync_param with
        | Some { p_kind = Handle; _ } -> issues
        | Some _ ->
            {
              fn = fn.f_name;
              what =
                Printf.sprintf "sync_on refers to non-handle %S" sync_param;
            }
            :: issues
        | None ->
            {
              fn = fn.f_name;
              what =
                Printf.sprintf "sync_on refers to unknown parameter %S"
                  sync_param;
            }
            :: issues)
    | Sync_if { cond_param; cond_const } ->
        let issues =
          match integer_param fn cond_param with
          | Some { p_kind = Scalar; _ } -> issues
          | Some _ ->
              {
                fn = fn.f_name;
                what =
                  Printf.sprintf "sync condition on non-scalar %S" cond_param;
              }
              :: issues
          | None ->
              {
                fn = fn.f_name;
                what =
                  Printf.sprintf "sync condition on unknown parameter %S"
                    cond_param;
              }
              :: issues
        in
        if
          int_of_string_opt cond_const <> None
          || find_constant spec cond_const <> None
        then issues
        else
          {
            fn = fn.f_name;
            what = Printf.sprintf "sync condition uses unknown constant %S" cond_const;
          }
          :: issues
  in
  (* 5. The ava_stream ordering key must name a handle parameter: the
        server orders enqueued work per stream object. *)
  let issues =
    match fn.f_stream with
    | None -> issues
    | Some s -> (
        match integer_param fn s with
        | Some { p_kind = Handle; _ } -> issues
        | Some _ ->
            {
              fn = fn.f_name;
              what = Printf.sprintf "ava_stream refers to non-handle %S" s;
            }
            :: issues
        | None ->
            {
              fn = fn.f_name;
              what =
                Printf.sprintf "ava_stream refers to unknown parameter %S" s;
            }
            :: issues)
  in
  (* 6. Async functions must not have output parameters (the fidelity
        caveat of §4.2): flag them as issues unless explicitly annotated
        async (then it's an accepted fidelity loss, reported only). *)
  issues

let check spec =
  List.concat_map (fun fn -> List.rev (check_fn spec fn)) spec.fns

(* §3's "assertions and theorems which can be automatically checked":
   properties of the generated stack that hold by construction or are
   accepted, documented fidelity losses.  Unlike {!check} failures these
   do not block generation — they are the report a verifier would emit. *)
type fidelity_note = { fn_note : string; note : string }

let pp_fidelity ppf n = Fmt.pf ppf "%s: %s" n.fn_note n.note

let fidelity_report spec =
  List.concat_map
    (fun fn ->
      let notes = ref [] in
      let note fmt =
        Printf.ksprintf
          (fun s -> notes := { fn_note = fn.f_name; note = s } :: !notes)
          fmt
      in
      (* 1. Asynchronously forwarded calls cannot report errors at their
         call site (§4.2's caveat). *)
      (match fn.f_sync with
      | Async ->
          note
            "forwarded asynchronously: failures surface at a later synchronous call";
          (* 2. Async calls with observable outputs need special cases
             (deferred delivery or guest-assigned ids). *)
          List.iter
            (fun p ->
              match (p.p_kind, p.p_direction) with
              | Element { allocates = true }, Out ->
                  note
                    "async output %S handled by guest-assigned id" p.p_name
              | (Buffer _ | Element _), (Out | In_out) ->
                  note
                    "async output %S delivered by a deferred reply" p.p_name
              | _ -> ())
            fn.f_params
      | Sync | Sync_if _ -> ()
      | Sync_on { sync_param } ->
          note
            "completion point: reply withheld until work ordered before %S drains"
            sync_param);
      (* 3. Deallocating calls must target a handle parameter. *)
      List.iter
        (fun p ->
          if p.p_deallocates && p.p_kind <> Handle then
            note "deallocates non-handle parameter %S" p.p_name)
        fn.f_params;
      (* 4. Record classes need a trackable object. *)
      (match fn.f_record with
      | Object_modify
        when (not (List.exists (fun p -> p.p_target) fn.f_params))
             && not (List.exists (fun p -> p.p_kind = Handle) fn.f_params) ->
          note "object_modify without a handle or target parameter"
      | _ -> ());
      List.rev !notes)
    spec.fns

let is_complete spec = check spec = []

(* Developer guidance: everything inference could not answer, per
   function — the interactive part of the Figure 2 workflow. *)
let guidance spec =
  List.filter_map
    (fun fn ->
      if fn.f_unresolved = [] then None else Some (fn.f_name, fn.f_unresolved))
    spec.fns
