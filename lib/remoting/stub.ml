(* The guest library runtime: AvA's API-agnostic marshalling engine on
   the VM side.

   Generated guest stubs (here: the plan-driven glue in [Ava_core]) call
   [invoke]; this module handles sequencing, the sync/async decision from
   the {!Ava_codegen.Plan}, reply matching, and the paper's deferred-error
   semantics for asynchronously forwarded calls: an async failure is
   reported by the next synchronous call on the same stub. *)

module Plan = Ava_codegen.Plan
module Transport = Ava_transport.Transport
module Obs = Ava_obs.Obs
module Iommu = Ava_device.Iommu

open Ava_sim

(* Guest-assigned object ids live above the server's virtual-id range
   (see {!Server.Ctx}) so neither collides with the other or with the
   small integers APIs use for platform/device enumeration. *)
let first_guest_handle = 0x100000

type pending = {
  p_fn : string;
  p_sync : bool;
  p_ivar : Message.reply Ivar.t;
  p_on_reply : (Message.reply -> unit) option;
  mutable p_data : bytes;
      (** encoded [Call] frame, for seq-based resend; switched to
          [p_full] after a cache-miss NAK so watchdog resends carry the
          full payload too *)
  p_full : bytes;
      (** encoded [Call] frame with every cacheable blob sent in full
          ([Blob_cached], never [Blob_ref]) — the resend after a NAK *)
  p_announced : int64 list;
      (** digests of cacheable payloads in this call; acknowledged as
          server-resident once the reply arrives *)
  mutable p_tries : int;
}

(* Recovery policy for lost calls/replies: after [timeout_ns] without a
   reply the encoded call is resent under its original seq (the server
   deduplicates); the timeout scales by [backoff] per attempt, and after
   [max_retries] resends the call fails with {!Server.status_timeout}.
   Each sleep is additionally scattered by a seeded per-VM jitter factor
   in [1-jitter, 1+jitter] so guests sharing a fate event (server
   restart, device reset) don't resend in lockstep; [jitter = 0.0]
   reproduces the pure exponential schedule bit-for-bit. *)
type retry = {
  timeout_ns : Time.t;
  max_retries : int;
  backoff : float;
  jitter : float;
}

let default_retry =
  { timeout_ns = Time.ms 20; max_retries = 12; backoff = 2.0; jitter = 0.25 }

(* Content-addressed transfer cache (guest half): blobs within
   [min_bytes, max_bytes] are hashed (FNV-1a 64); once the server has
   acknowledged a digest, later sends of the same payload travel as a
   13-byte [Blob_ref].  [max_bytes] must not exceed the server store
   capacity or an oversized blob would NAK forever. *)
type cache = { cache_min_bytes : int; cache_max_bytes : int }

let cache_for_capacity capacity =
  { cache_min_bytes = 1024; cache_max_bytes = capacity }

(* Shared virtual addressing (guest half): blobs of at least a page are
   pinned into the device IOVA window ([Iommu.map], charged as marshal
   work) and travel as a 13-byte [Mapped_ref] — the payload bytes never
   cross the wire at all.  Each call maps its buffers fresh: workloads
   hand the runtime newly written buffers per call, so memoizing
   (iova reuse keyed on physical identity) would claim savings the
   guest's dirtying pattern doesn't justify.  Conservative by design. *)
let sva_min_bytes = Ava_device.Dma.page_size

type t = {
  engine : Engine.t;
  vm_id : int;
  plan : Plan.t;
  ep : Transport.endpoint;
  retry : retry option;  (** [None]: no watchdogs at all (default) *)
  retry_rng : Rng.t;  (** per-VM stream for watchdog jitter *)
  mutable next_seq : int;
  mutable next_handle : int;
  pending : (int, pending) Hashtbl.t;
  mutable deferred_errors : (string * int) list;  (** newest first *)
  batch_limit : int;  (** max async calls buffered; 1 disables batching *)
  batch_bytes_limit : int;
  mutable batch : Message.call list;  (** newest first *)
  mutable batch_bytes : int;
  mutable batches_sent : int;
  mutable sync_calls : int;
  mutable async_calls : int;
  mutable marshalled_bytes : int;
  mutable retries : int;  (** resends performed by the watchdogs *)
  mutable timeouts : int;  (** calls that exhausted their retry budget *)
  callbacks : (int, Wire.value list -> unit) Hashtbl.t;
  mutable next_callback : int;
  mutable upcalls : int;
  obs : Obs.t option;
      (** latency-attribution registry; purely passive, never advances
          virtual time, so arming it cannot perturb the run *)
  cache : cache option;  (** [None]: transfer cache off (default) *)
  sva : Iommu.t option;  (** [None]: SVA off (default) *)
  mutable sva_maps : int;  (** blobs pinned and sent as [Mapped_ref] *)
  mutable sva_saved_bytes : int;  (** payload bytes elided by refs *)
  acked : (int64, unit) Hashtbl.t;
      (** digests the server has acknowledged as store-resident *)
  mutable cache_refs : int;  (** payloads sent as [Blob_ref] *)
  mutable cache_saved_bytes : int;  (** payload bytes elided by refs *)
  mutable cache_announces : int;  (** payloads sent as [Blob_cached] *)
  mutable cache_nak_resends : int;  (** full resends after a cache miss *)
}

let create ?(batch_limit = 1) ?retry ?cache ?sva ?obs engine ~vm_id ~plan ~ep
    =
  let t =
    {
      engine;
      vm_id;
      plan;
      ep;
      retry;
      (* Deterministic per-VM stream: two stubs with the same retry
         policy still scatter their resends differently. *)
      retry_rng = Rng.create (Int64.of_int (0x5eed + (vm_id * 7919)));
      next_seq = 0;
      next_handle = first_guest_handle;
      pending = Hashtbl.create 32;
      deferred_errors = [];
      batch_limit = Stdlib.max 1 batch_limit;
      batch_bytes_limit = 32 * 1024;
      batch = [];
      batch_bytes = 0;
      batches_sent = 0;
      sync_calls = 0;
      async_calls = 0;
      marshalled_bytes = 0;
      retries = 0;
      timeouts = 0;
      callbacks = Hashtbl.create 8;
      next_callback = 1;
      upcalls = 0;
      obs;
      cache;
      sva;
      sva_maps = 0;
      sva_saved_bytes = 0;
      acked = Hashtbl.create 32;
      cache_refs = 0;
      cache_saved_bytes = 0;
      cache_announces = 0;
      cache_nak_resends = 0;
    }
  in
  (* Reply receiver: dispatches replies to waiting callers and runs
     completion callbacks of async calls. *)
  Engine.spawn engine ~name:"ava-stub-rx" (fun () ->
      let rec loop () =
        let data = Transport.recv ep in
        (match Message.decode data with
        | Ok (Message.Reply r) -> (
            match Hashtbl.find_opt t.pending r.Message.reply_seq with
            | None -> () (* late reply for a cancelled call: drop *)
            | Some p ->
                Hashtbl.remove t.pending r.Message.reply_seq;
                (match t.obs with
                | Some o ->
                    let now = Engine.now engine in
                    Obs.mark o ~vm:vm_id ~seq:r.Message.reply_seq
                      Obs.M_reply_recv ~at:now;
                    Obs.span_close o ~vm:vm_id ~seq:r.Message.reply_seq
                      ~status:r.Message.reply_status ~at:now
                | None -> ());
                (* A reply means the server resolved every payload of this
                   call, so its digests are now store-resident. *)
                List.iter
                  (fun d -> Hashtbl.replace t.acked d ())
                  p.p_announced;
                (match p.p_on_reply with Some f -> f r | None -> ());
                if (not p.p_sync) && r.Message.reply_status <> 0 then
                  t.deferred_errors <-
                    (p.p_fn, r.Message.reply_status) :: t.deferred_errors;
                if p.p_sync then Ivar.fill p.p_ivar r)
        | Ok (Message.Nak n) -> (
            (* Cache miss: forget the rejected digests, then resend the
               full-payload frame under the original seq.  The watchdog
               (if armed) also switches to the full frame. *)
            List.iter
              (fun d -> Hashtbl.remove t.acked d)
              n.Message.nak_digests;
            match Hashtbl.find_opt t.pending n.Message.nak_seq with
            | None -> () (* already replied or given up: drop *)
            | Some p ->
                t.cache_nak_resends <- t.cache_nak_resends + 1;
                p.p_data <- p.p_full;
                (* Recovery traffic never waits behind a coalescing
                   horizon: the server is stalled on this seq. *)
                Transport.send ~kick:true t.ep p.p_full)
        | Ok (Message.Upcall u) -> (
            (* Dispatch a server-to-guest callback in its own process so
               a slow callback never blocks reply delivery. *)
            match Hashtbl.find_opt t.callbacks u.Message.up_cb with
            | None -> ()
            | Some f ->
                t.upcalls <- t.upcalls + 1;
                Engine.spawn engine (fun () -> f u.Message.up_args))
        | Ok (Message.Call _) | Ok (Message.Batch _) | Ok (Message.Skip _)
        | Error _ -> ());
        loop ()
      in
      loop ());
  t

let vm_id t = t.vm_id
let batches_sent t = t.batches_sent
let upcalls_received t = t.upcalls
let retries t = t.retries
let timeouts t = t.timeouts
let cache_refs t = t.cache_refs
let sva_maps t = t.sva_maps
let sva_saved_bytes t = t.sva_saved_bytes
let cache_saved_bytes t = t.cache_saved_bytes
let cache_announces t = t.cache_announces
let cache_nak_resends t = t.cache_nak_resends

(* Register a guest closure; the returned id travels in place of the C
   function pointer and the server upcalls through it. *)
let register_callback t f =
  let id = t.next_callback in
  t.next_callback <- id + 1;
  Hashtbl.replace t.callbacks id f;
  id

let unregister_callback t id = Hashtbl.remove t.callbacks id
let sync_calls t = t.sync_calls
let async_calls t = t.async_calls
let marshalled_bytes t = t.marshalled_bytes
let in_flight t = Hashtbl.length t.pending

(* Allocate a guest-managed object id (sent to the server, which binds
   its host object to it). *)
let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

(* The deferred-error channel of §4.2: async calls cannot fail at their
   call site; the error surfaces here, at the next synchronous call. *)
let take_deferred_error t =
  match List.rev t.deferred_errors with
  | [] -> None
  | oldest :: _ ->
      t.deferred_errors <-
        List.rev (List.tl (List.rev t.deferred_errors));
      Some oldest

let pending_errors t = List.length t.deferred_errors

(* Charge the CPU cost of marshalling: descriptor build plus pinning of
   bulk payloads (zero-copy transport; no payload memcpy). *)
let marshal_cost_ns bytes = Time.ns (400 + (bytes / 64))

(* Hashing runs at memory speed (~32 B/ns); charged only when the cache
   is armed so the disabled stack stays bit-identical. *)
let hash_cost_ns bytes = Time.ns (bytes / 32)

(* Walk the argument values, replacing each cacheable [Blob]: by a
   [Blob_ref] when its digest is server-acknowledged, by a [Blob_cached]
   (digest announce) otherwise.  Returns the substituted args, the args
   with every cacheable blob in full (the NAK-resend form), the digests
   carried, and the payload bytes hashed. *)
let cache_substitute t c args =
  let digests = ref [] and hashed = ref 0 in
  let cacheable b =
    let len = Bytes.length b in
    len >= c.cache_min_bytes && len <= c.cache_max_bytes
  in
  let rec subst v =
    match v with
    | Wire.Blob b when cacheable b ->
        let d = Wire.digest b in
        hashed := !hashed + Bytes.length b;
        digests := d :: !digests;
        let full = Wire.Blob_cached { bc_digest = d; bc_data = b } in
        if Hashtbl.mem t.acked d then begin
          t.cache_refs <- t.cache_refs + 1;
          t.cache_saved_bytes <- t.cache_saved_bytes + Bytes.length b;
          (Wire.Blob_ref { br_digest = d; br_size = Bytes.length b }, full)
        end
        else begin
          t.cache_announces <- t.cache_announces + 1;
          (full, full)
        end
    | Wire.List vs ->
        let pairs = List.map subst vs in
        (Wire.List (List.map fst pairs), Wire.List (List.map snd pairs))
    | v -> (v, v)
  in
  let pairs = List.map subst args in
  ( List.map fst pairs,
    List.map snd pairs,
    List.rev !digests,
    !hashed )

(* Pin page-or-larger blobs into the device IOVA window and replace them
   by [Mapped_ref]s.  Runs before the transfer-cache walk, so mapped
   buffers are never hashed — the two substitutions partition the blobs
   by size.  [Iommu.map] delays for the per-page pin cost, which lands
   in the call's marshal phase (pinning is CPU-side descriptor work). *)
let sva_substitute t iommu args =
  let rec subst v =
    match v with
    | Wire.Blob b when Bytes.length b >= sva_min_bytes ->
        let iova = Iommu.map iommu b in
        t.sva_maps <- t.sva_maps + 1;
        t.sva_saved_bytes <- t.sva_saved_bytes + Bytes.length b;
        Wire.Mapped_ref { mr_iova = iova; mr_size = Bytes.length b }
    | Wire.List vs -> Wire.List (List.map subst vs)
    | v -> v
  in
  List.map subst args

(* Stamp departure on every call leaving for the wire (first write wins,
   so watchdog resends never rewind a span). *)
let mark_sent t seqs =
  match t.obs with
  | None -> ()
  | Some o ->
      let now = Engine.now t.engine in
      List.iter
        (fun seq -> Obs.mark o ~vm:t.vm_id ~seq Obs.M_sent ~at:now)
        seqs

(* Stamp the doorbell-commit boundary for a set of seqs.  Only fires on
   doorbell-armed transports (see [Transport.send ?on_scheduled]), so
   un-coalesced runs never grow a doorbell phase. *)
let db_mark t seqs at =
  match t.obs with
  | None -> ()
  | Some o ->
      List.iter
        (fun seq -> Obs.mark o ~vm:t.vm_id ~seq Obs.M_doorbell ~at)
        seqs

(* Send any buffered asynchronous calls as one batch message (rCUDA-style
   API batching, §4.2).  Marshalling costs were already charged when each
   call was buffered; the flush pays one transport send. *)
let flush_batch t =
  match List.rev t.batch with
  | [] -> ()
  | [ only ] ->
      t.batch <- [];
      t.batch_bytes <- 0;
      let seqs = [ only.Message.call_seq ] in
      mark_sent t seqs;
      Transport.send
        ~on_scheduled:(fun at -> db_mark t seqs at)
        t.ep
        (Message.encode (Message.Call only))
  | calls ->
      t.batch <- [];
      t.batch_bytes <- 0;
      t.batches_sent <- t.batches_sent + 1;
      let seqs = List.map (fun (c : Message.call) -> c.Message.call_seq) calls in
      mark_sent t seqs;
      Transport.send
        ~on_scheduled:(fun at -> db_mark t seqs at)
        t.ep
        (Message.encode (Message.Batch calls))

(* Give up on a pending call: synthesize a timeout reply so the caller
   (or the deferred-error channel) observes the failure instead of
   hanging forever. *)
let give_up t seq p =
  Hashtbl.remove t.pending seq;
  t.timeouts <- t.timeouts + 1;
  (match t.obs with
  | Some o ->
      Obs.span_close o ~vm:t.vm_id ~seq ~status:Server.status_timeout
        ~at:(Engine.now t.engine)
  | None -> ());
  let reply =
    {
      Message.reply_seq = seq;
      reply_status = Server.status_timeout;
      reply_ret = Wire.Unit;
      reply_outs = [];
    }
  in
  (match p.p_on_reply with Some f -> f reply | None -> ());
  if p.p_sync then Ivar.fill p.p_ivar reply
  else
    t.deferred_errors <- (p.p_fn, Server.status_timeout) :: t.deferred_errors

(* Scatter one watchdog sleep by the policy's jitter factor.  Zero
   jitter draws nothing from the RNG, keeping the schedule (and the
   stream) bit-identical to the pure exponential one. *)
let jittered t r base_ns =
  if r.jitter <= 0.0 then base_ns
  else
    let f = 1.0 +. (r.jitter *. ((2.0 *. Rng.float t.retry_rng) -. 1.0)) in
    Stdlib.max 1 (int_of_float (float_of_int base_ns *. f))

(* Per-call watchdog: as long as the seq is pending, resend its encoded
   frame on an exponential-backoff schedule (each sleep scattered by the
   per-VM jitter; the un-jittered base drives the backoff).  Resends
   carry the original seq, so the server executes at most once and
   replays the cached reply for duplicates; a lost reply is recovered
   the same way. *)
let start_watchdog t r seq =
  Engine.spawn t.engine ~name:(Printf.sprintf "ava-stub-retry-%d" seq)
    (fun () ->
      let rec watch base_ns =
        Engine.delay (jittered t r base_ns);
        match Hashtbl.find_opt t.pending seq with
        | None -> () (* replied; nothing to do *)
        | Some p ->
            if p.p_tries >= r.max_retries then give_up t seq p
            else begin
              p.p_tries <- p.p_tries + 1;
              t.retries <- t.retries + 1;
              Transport.send ~kick:true t.ep p.p_data;
              watch
                (Stdlib.max 1
                   (int_of_float (float_of_int base_ns *. r.backoff)))
            end
      in
      watch r.timeout_ns)

(* Batching policy: only calls that touch no device resource (argument
   updates, reference counting) are held back; any device-work or
   synchronous call departs immediately, carrying the held calls with it
   (piggybacking), so batching never delays the accelerator. *)
let send_call t ~fn ~args ~sync ~holdable ~on_reply =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (match t.obs with
  | Some o ->
      Obs.span_open o ~vm:t.vm_id ~seq ~fn ~at:(Engine.now t.engine)
  | None -> ());
  let args =
    match t.sva with None -> args | Some iommu -> sva_substitute t iommu args
  in
  let sent_args, full_args, announced, hashed =
    match t.cache with
    | None -> (args, args, [], 0)
    | Some c -> cache_substitute t c args
  in
  let call =
    { Message.call_seq = seq; call_vm = t.vm_id; call_fn = fn;
      call_args = sent_args }
  in
  let data = Message.encode (Message.Call call) in
  (* [announced] lists every cacheable digest in the call (refs included),
     so an empty list means no substitution happened and the full frame is
     the sent frame itself. *)
  let full =
    if announced = [] then data
    else
      Message.encode (Message.Call { call with Message.call_args = full_args })
  in
  t.marshalled_bytes <- t.marshalled_bytes + Bytes.length data;
  if hashed > 0 then Engine.delay (hash_cost_ns hashed);
  Engine.delay (marshal_cost_ns (Bytes.length data));
  (match t.obs with
  | Some o ->
      Obs.mark o ~vm:t.vm_id ~seq Obs.M_marshal_done
        ~at:(Engine.now t.engine)
  | None -> ());
  let p =
    { p_fn = fn; p_sync = sync; p_ivar = Ivar.create (); p_on_reply = on_reply;
      p_data = data; p_full = full; p_announced = announced; p_tries = 0 }
  in
  Hashtbl.replace t.pending seq p;
  (match t.retry with Some r -> start_watchdog t r seq | None -> ());
  if t.batch_limit = 1 then begin
    mark_sent t [ seq ];
    Transport.send ~kick:sync
      ~on_scheduled:(fun at -> db_mark t [ seq ] at)
      t.ep data
  end
  else if sync then begin
    (* Synchronous calls flush held work first so ordering is preserved,
       then travel alone (their reply is awaited).  The kick rings any
       coalesced doorbell immediately: the caller is already committed
       to a round trip, so there is nothing to wait for. *)
    flush_batch t;
    mark_sent t [ seq ];
    Transport.send ~kick:true
      ~on_scheduled:(fun at -> db_mark t [ seq ] at)
      t.ep data
  end
  else if not holdable then begin
    (* Device work departs now, taking the held calls along. *)
    t.batch <- call :: t.batch;
    t.batch_bytes <- t.batch_bytes + Bytes.length data;
    flush_batch t
  end
  else begin
    t.batch <- call :: t.batch;
    t.batch_bytes <- t.batch_bytes + Bytes.length data;
    if
      List.length t.batch >= t.batch_limit
      || t.batch_bytes >= t.batch_bytes_limit
    then flush_batch t
  end;
  p

(* Invoke [fn].  [env] binds scalar parameters by name for the plan's
   size/synchrony expressions.  [force_sync] overrides the plan when the
   caller needs outputs immediately (e.g. an event handle it must return).
   Returns the reply for sync calls; async calls return [Ok None]
   immediately and deliver their reply through [on_reply]. *)
let invoke ?(force_sync = false) ?on_reply t ~fn ~env ~args =
  match Plan.find t.plan fn with
  | None -> Error (Printf.sprintf "no plan for function %S" fn)
  | Some plan ->
      let sync = force_sync || Plan.is_sync plan ~env in
      (* Holdable: produces nothing and consumes no device resource. *)
      let holdable =
        (not (Plan.has_outputs plan)) && plan.Plan.cp_resources = []
      in
      if sync then begin
        t.sync_calls <- t.sync_calls + 1;
        let p = send_call t ~fn ~args ~sync:true ~holdable:false ~on_reply in
        let reply = Ivar.read p.p_ivar in
        Ok (Some reply)
      end
      else begin
        t.async_calls <- t.async_calls + 1;
        let _ = send_call t ~fn ~args ~sync:false ~holdable ~on_reply in
        Ok None
      end

(* Convenience for callers that always need the reply. *)
let invoke_sync t ~fn ~env ~args =
  match invoke ~force_sync:true t ~fn ~env ~args with
  | Ok (Some reply) -> Ok reply
  | Ok None -> assert false
  | Error _ as e -> e
