lib/sim/semaphore.mli:
