lib/simcl/kdriver.ml: Ava_device Ava_sim Bytes Engine Gpu Int64 Ivar Mmio Time Timing
