(* The SimCL public API: the single stable interface of the accelerator
   silo (the one AvA interposes).

   39 entry points mirroring the commonly used core of OpenCL 1.2 — the
   same count the AvA prototype para-virtualized.  Workloads are written
   against this module type and run unchanged over the native silo, the
   pass-through silo, the full-virtualization silo or any AvA-generated
   remoting stack. *)

open Types

module type S = sig
  (* Platform / device discovery *)
  val clGetPlatformIDs : unit -> platform_id list result
  val clGetPlatformInfo : platform_id -> platform_info -> string result
  val clGetDeviceIDs : platform_id -> device_type -> device_id list result
  val clGetDeviceInfo : device_id -> device_info -> info_value result

  (* Contexts *)
  val clCreateContext : device_id list -> context result
  val clRetainContext : context -> unit result
  val clReleaseContext : context -> unit result
  val clGetContextInfo : context -> int result
  (** Returns the context's reference count. *)

  (* Command queues *)
  val clCreateCommandQueue :
    context -> device_id -> profiling:bool -> command_queue result

  val clRetainCommandQueue : command_queue -> unit result
  val clReleaseCommandQueue : command_queue -> unit result

  val clGetCommandQueueInfo : command_queue -> context result
  (** Returns the queue's context. *)

  (* Memory objects *)
  val clCreateBuffer : context -> size:int -> mem result
  val clRetainMemObject : mem -> unit result
  val clReleaseMemObject : mem -> unit result

  val clGetMemObjectInfo : mem -> int result
  (** Returns the buffer size in bytes. *)

  (* Programs *)
  val clCreateProgramWithSource : context -> source:string -> program result
  val clBuildProgram : program -> options:string -> unit result
  val clGetProgramBuildInfo : program -> string result
  val clRetainProgram : program -> unit result
  val clReleaseProgram : program -> unit result

  (* Kernels *)
  val clCreateKernel : program -> name:string -> kernel result
  val clRetainKernel : kernel -> unit result
  val clReleaseKernel : kernel -> unit result
  val clSetKernelArg : kernel -> index:int -> kernel_arg -> unit result

  val clGetKernelInfo : kernel -> string result
  (** Returns the kernel's function name. *)

  val clGetKernelWorkGroupInfo : kernel -> device_id -> int result
  (** Returns the maximum work-group size for the device. *)

  (* Enqueue operations.  [want_event] mirrors passing a non-NULL
     [cl_event *event]: when false, no event handle is allocated. *)
  val clEnqueueNDRangeKernel :
    command_queue ->
    kernel ->
    global_work_size:int ->
    local_work_size:int ->
    wait_list:event list ->
    want_event:bool ->
    event option result

  val clEnqueueTask :
    command_queue ->
    kernel ->
    wait_list:event list ->
    want_event:bool ->
    event option result

  val clEnqueueReadBuffer :
    command_queue ->
    mem ->
    blocking:bool ->
    offset:int ->
    size:int ->
    wait_list:event list ->
    want_event:bool ->
    (bytes * event option) result
  (** Returns the bytes read.  When [blocking] is false the returned
      bytes become valid only once the returned event completes; SimCL
      materializes them at completion time, so callers must wait on the
      event before inspecting the data. *)

  val clEnqueueWriteBuffer :
    command_queue ->
    mem ->
    blocking:bool ->
    offset:int ->
    src:bytes ->
    wait_list:event list ->
    want_event:bool ->
    event option result

  val clEnqueueCopyBuffer :
    command_queue ->
    src:mem ->
    dst:mem ->
    src_offset:int ->
    dst_offset:int ->
    size:int ->
    wait_list:event list ->
    want_event:bool ->
    event option result

  val clEnqueueFillBuffer :
    command_queue ->
    mem ->
    pattern:char ->
    offset:int ->
    size:int ->
    wait_list:event list ->
    want_event:bool ->
    event option result

  (* Synchronization *)
  val clFlush : command_queue -> unit result
  val clFinish : command_queue -> unit result
  val clWaitForEvents : event list -> unit result

  (* Events *)
  val clGetEventInfo : event -> event_status result
  val clGetEventProfilingInfo : event -> profiling_info -> int result
  val clReleaseEvent : event -> unit result
end

(* Names of all 39 entry points, in declaration order: used by the CAvA
   spec, the automation metrics and coverage tests. *)
let function_names =
  [
    "clGetPlatformIDs";
    "clGetPlatformInfo";
    "clGetDeviceIDs";
    "clGetDeviceInfo";
    "clCreateContext";
    "clRetainContext";
    "clReleaseContext";
    "clGetContextInfo";
    "clCreateCommandQueue";
    "clRetainCommandQueue";
    "clReleaseCommandQueue";
    "clGetCommandQueueInfo";
    "clCreateBuffer";
    "clRetainMemObject";
    "clReleaseMemObject";
    "clGetMemObjectInfo";
    "clCreateProgramWithSource";
    "clBuildProgram";
    "clGetProgramBuildInfo";
    "clRetainProgram";
    "clReleaseProgram";
    "clCreateKernel";
    "clRetainKernel";
    "clReleaseKernel";
    "clSetKernelArg";
    "clGetKernelInfo";
    "clGetKernelWorkGroupInfo";
    "clEnqueueNDRangeKernel";
    "clEnqueueTask";
    "clEnqueueReadBuffer";
    "clEnqueueWriteBuffer";
    "clEnqueueCopyBuffer";
    "clEnqueueFillBuffer";
    "clFlush";
    "clFinish";
    "clWaitForEvents";
    "clGetEventInfo";
    "clGetEventProfilingInfo";
    "clReleaseEvent";
  ]
