(** The AvA-generated API server dispatch for SimQA. *)

type state = {
  api : (module Ava_simqa.Api.S);
  native : Ava_simqa.Native.st;
}

val make_state : Ava_simqa.Device.t -> vm_id:int -> state

val register : state Ava_remoting.Server.t -> unit
(** Install all 8 handlers. *)
