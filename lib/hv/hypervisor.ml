(* The hypervisor: VM registry plus the device-attachment techniques of
   the paper's §2 design space.

   - [attach_passthrough]: the guest maps the device's MMIO BAR directly
     and owns a native kernel driver — native speed, zero interposition.
   - [attach_fullvirt]: every MMIO access traps to the hypervisor and DMA
     pays shadow-page handling — full interposition, devastating cost.
   - API remoting stacks do not attach the device at all; they ride a
     hypervisor-managed transport (see {!Ava_transport}) and the router.

   All three reuse the identical SimCL silo code; only the access path
   differs, which is the paper's central observation about silos. *)

open Ava_sim
open Ava_device

type t = {
  engine : Engine.t;
  virt : Timing.virt;
  mutable vms : Vm.t list;
  mutable next_vm_id : int;
  mutable traps : int;
  mutable attachments : (int * Gpu.t) list;
      (** vm_id -> dedicated device, for pass-through / full-virt guests *)
}

let create ?(virt = Timing.default_virt) ?(vm_id_base = 1) engine =
  if vm_id_base < 1 then invalid_arg "Hypervisor.create: vm_id_base must be >= 1";
  { engine; virt; vms = []; next_vm_id = vm_id_base; traps = 0; attachments = [] }

let engine t = t.engine
let virt t = t.virt
let vms t = List.rev t.vms
let traps t = t.traps

let create_vm t ~name =
  let vm = Vm.create ~vm_id:t.next_vm_id ~name in
  t.next_vm_id <- t.next_vm_id + 1;
  t.vms <- vm :: t.vms;
  vm

let find_vm t vm_id = List.find_opt (fun vm -> Vm.id vm = vm_id) t.vms

let record_attachment t vm gpu =
  match vm with
  | Some vm -> t.attachments <- (Vm.id vm, gpu) :: t.attachments
  | None -> ()

let attachment t ~vm_id = List.assoc_opt vm_id t.attachments

(* Pass-through: dedicate the physical device to one guest.  The guest
   runs the vendor silo on a native port; the hypervisor sees nothing.
   [vm] records which guest the device is dedicated to, so a pooled
   host can tell which pool device a pass-through guest pinned. *)
let attach_passthrough ?vm t gpu =
  record_attachment t vm gpu;
  Ava_simcl.Kdriver.create gpu

(* Full virtualization: the guest runs the same vendor silo, but each
   MMIO access VM-exits and DMA is emulated page by page. *)
let attach_fullvirt ?vm t gpu =
  record_attachment t vm gpu;
  let counting_port =
    let inner = Mmio.trapped_port (Gpu.mmio gpu) ~virt:t.virt in
    {
      Mmio.port_write =
        (fun ~addr v ->
          t.traps <- t.traps + 1;
          inner.Mmio.port_write ~addr v);
      port_read =
        (fun ~addr ->
          t.traps <- t.traps + 1;
          inner.Mmio.port_read ~addr);
    }
  in
  Ava_simcl.Kdriver.create ~port:counting_port
    ~per_page_ns:t.virt.Timing.shadow_page_ns gpu
