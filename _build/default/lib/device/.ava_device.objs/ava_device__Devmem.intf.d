lib/device/devmem.mli:
