(* Record/replay support for VM migration (§4.3).

   Calls are recorded according to their spec'd record class, Nooks-style
   object tracking included: deallocating an object prunes its allocation
   and modification history, so the replay log stays proportional to live
   state, not to execution length.

   Migration itself is orchestrated by {!Ava_core}: suspend the VM's
   worker, snapshot device buffers, replay the log on the destination,
   restore buffers, resume. *)

module Plan = Ava_codegen.Plan

open Ava_spec.Ast

type recorded = {
  rc_fn : string;
  rc_args : Wire.value list;
  rc_class : record_class;
  rc_primary : int option;
      (** the tracked guest handle this call allocates or modifies *)
}

type t = {
  mutable log : recorded list;  (** newest first *)
  mutable recorded_count : int;
  mutable pruned_count : int;
}

let create () = { log = []; recorded_count = 0; pruned_count = 0 }

(* The tracked object of a call: for allocations, the guest id the stub
   pre-assigned (by convention the first [Handle] among the arguments of
   an [Out_element { allocates }] parameter); for modifications and
   deallocations, the first handle argument. *)
let primary_handle (plan : Plan.call_plan) (args : Wire.value list) =
  let with_actions = List.combine plan.Plan.cp_params args in
  (* Explicit target annotation wins. *)
  let explicit =
    match plan.Plan.cp_target_param with
    | None -> None
    | Some tname ->
        List.find_map
          (fun ((name, _), v) ->
            match v with
            | Wire.Handle h when String.equal name tname ->
                Some (Int64.to_int h)
            | _ -> None)
          with_actions
  in
  let alloc_target =
    List.find_map
      (fun ((_, action), v) ->
        match (action, v) with
        | Plan.Out_element { allocates = true }, Wire.Handle h ->
            Some (Int64.to_int h)
        | _ -> None)
      with_actions
  in
  match (explicit, alloc_target) with
  | Some h, _ -> Some h
  | None, Some h -> Some h
  | None, None ->
      List.find_map
        (function
          | (_, Plan.Pass_handle), Wire.Handle h -> Some (Int64.to_int h)
          | _ -> None)
        with_actions

(* The replay log must hold self-contained payloads: replay runs against
   a fresh destination silo whose content store is empty, so a recorded
   transfer-cache value would be unresolvable there.  The server resolves
   cache values before the record hook fires, making this a no-op on the
   normal path; it guards direct-execution callers. *)
let rec sanitize_value = function
  | Wire.Blob_cached { bc_data; _ } -> Wire.Blob bc_data
  | Wire.List vs -> Wire.List (List.map sanitize_value vs)
  | v -> v

(* Observe one successfully executed call.  [allocated] is the virtual
   id the server assigned when the call created an object (the return
   handle), which argument inspection cannot recover. *)
let observe ?allocated t (plan : Plan.call_plan) (c : Message.call) =
  let record cls =
    let primary =
      match allocated with
      | Some _ -> allocated
      | None -> primary_handle plan c.Message.call_args
    in
    t.log <-
      {
        rc_fn = c.Message.call_fn;
        rc_args = List.map sanitize_value c.Message.call_args;
        rc_class = cls;
        rc_primary = primary;
      }
      :: t.log;
    t.recorded_count <- t.recorded_count + 1
  in
  match plan.Plan.cp_record with
  | No_record -> ()
  | Global_config -> record Global_config
  | Object_alloc -> record Object_alloc
  | Object_modify -> record Object_modify
  | Object_dealloc -> (
      (* Prune the object's history instead of recording the dealloc. *)
      match primary_handle plan c.Message.call_args with
      | None -> ()
      | Some h ->
          let keep, dropped =
            List.partition
              (fun r ->
                match (r.rc_class, r.rc_primary) with
                | (Object_alloc | Object_modify), Some h' -> h' <> h
                | _ -> true)
              t.log
          in
          t.log <- keep;
          t.pruned_count <- t.pruned_count + List.length dropped)

(* The replay log in execution order. *)
let replay_log t = List.rev t.log

let log_length t = List.length t.log
let recorded_count t = t.recorded_count
let pruned_count t = t.pruned_count

(* Live tracked objects (guest ids with an allocation still in the log). *)
let live_objects t =
  List.filter_map
    (fun r ->
      match (r.rc_class, r.rc_primary) with
      | Object_alloc, Some h -> Some h
      | _ -> None)
    (replay_log t)

(* Replay all recorded calls through [execute] (typically a fresh API
   server on the destination host).  Returns the number of replayed
   calls. *)
let replay t ~execute =
  let l = replay_log t in
  List.iter (fun r -> execute ~fn:r.rc_fn ~args:r.rc_args) l;
  List.length l
