lib/workloads/rodinia.ml: Array Ava_device Ava_simcl Bytes Clutil List String
