lib/core/migration.mli: Ava_remoting Ava_sim Ava_simcl Format Host Time
