(** The cluster tier: many pooled hosts behind one admission/placement
    layer, with cross-host tenant migration.

    Each host is a full single-host stack ({!Ava_core.Host.create_cl_host}
    with its own devices, API servers and router); the cluster fronts
    them with pluggable admission policies and reuses the pool's
    record/replay machinery end to end to move a live tenant between
    hosts: drain, export replies, replay onto the destination host's
    pool, re-steer the guest's router flow across routers
    ({!Ava_remoting.Router.transfer_flow}).

    All hosts share one simulation engine — the cluster is a model of a
    fleet, driven in one deterministic virtual timeline.  A single-host
    cluster under {!Global_least_loaded} adds zero virtual-time cost
    and is bit-identical to the bare pooled stack. *)

open Ava_sim

module Host = Ava_core.Host
module Pool = Ava_pool.Pool

(** Admission policies.

    - {!Global_least_loaded}: an omniscient scheduler routes each
      tenant to the healthy host with the least live load.
    - {!Gossip}: each host keeps a load digest of the fleet and pushes
      it to [g_fanout] random peers every [g_interval_ns]; admission
      asks a random host and routes on its {e possibly-stale} view.
    - {!Affinity}: locality-aware — a tenant's affinity key hashes to a
      preferred host, spilling only off quarantined hosts. *)
type policy =
  | Global_least_loaded
  | Gossip of { g_fanout : int; g_interval_ns : Time.t }
  | Affinity

val policy_to_string : policy -> string

type tenant

type t

val create :
  ?policy:policy ->
  ?devices_per_host:int ->
  ?placement:Pool.placement ->
  ?transfer_cache:int ->
  ?sva:bool ->
  ?obs:Ava_obs.Obs.t ->
  ?seed:int64 ->
  ?tracing:bool ->
  hosts:int ->
  Engine.t ->
  t
(** Stand up [hosts] pooled hosts ([devices_per_host] devices each,
    default 2, placed by [placement], default {!Pool.Least_loaded}) on
    one engine.  Each host gets a disjoint VM-id base so tenant ids
    stay globally unique.  [obs] is shared by every host, so
    {!tenant_summaries} aggregates per-tenant latency fleet-wide.
    [seed] drives gossip peer selection and admission frontend choice
    (default 7).  Gossip digest processes are spawned only for
    multi-host gossip clusters; call {!stop} before expecting
    [Engine.run] to drain. *)

val n_hosts : t -> int
val cl_host : t -> int -> Host.cl_host
val policy : t -> policy

val host_load : t -> int -> int
(** Live load of one host: summed estimated device time of its pool. *)

val host_busy_ns : t -> int -> Time.t
(** Actual accumulated device busy time across the host's GPUs. *)

val total_devices : t -> int

val quarantine_host : t -> int -> unit
(** Take the host out of admission and migration-destination rotation
    (resident tenants keep running). *)

val unquarantine_host : t -> int -> unit
val is_quarantined : t -> int -> bool

(** {1 Tenants} *)

val admit : ?footprint:int -> ?affinity:string -> t -> name:string -> tenant
(** Place a new tenant on a host chosen by the policy and attach it
    over the AvA remoting stack.  [affinity] is the locality key under
    {!Affinity} (defaults to [name]).
    @raise Invalid_argument when every host is quarantined. *)

val api : tenant -> (module Ava_simcl.Api.S)
val vm_id : tenant -> int
val host_of : tenant -> int
(** The host currently running the tenant (follows migrations). *)

val find_tenant : t -> vm_id:int -> tenant option
val tenant_ids : t -> int list

val retire : t -> vm_id:int -> bool
(** Retire the tenant from whichever host currently runs it (same
    contract as {!Host.retire_cl_vm}). *)

val migrate_tenant : t -> vm_id:int -> dest:int -> int
(** Live cross-host migration; returns bytes moved (0 when refused:
    unknown tenant, already mid-migration, or [dest] is its host).
    Sequence: claim the VM on the source pool, pause + drain, place on
    the destination host's pool, replay the record log and restore
    buffers onto it ({!Host.cl_silo_transfer}), seed the destination
    cursor and carry the reply log, move the guest's router flow across
    routers, detach the source.  The guest keeps its stub, transport
    and seq stream throughout.  Must run inside a simulation process.
    @raise Invalid_argument when [dest] is out of range or
    quarantined. *)

val rebalance_now : ?skew:float -> t -> bool
(** One fleet-level rebalance step: when the hottest healthy host's
    load exceeds [skew] (default 1.5) times the healthy average,
    migrate the resident tenant whose load best halves the hot-cold
    gap onto the coldest host.  Must run inside a simulation
    process. *)

val start_rebalancer : ?interval:Time.t -> ?skew:float -> t -> unit
(** Periodic {!rebalance_now} (default every 1 ms); stopped by
    {!stop}. *)

val stop : t -> unit
(** Quiesce gossip and rebalancer processes so [Engine.run] drains. *)

(** {1 Counters} *)

val admissions : t -> int
val rejected_admissions : t -> int
val cross_migrations : t -> int

val tenant_summaries : t -> (int * Ava_obs.Hist.summary) list
(** Per-tenant end-to-end latency summaries from the shared obs
    registry (empty when created without [~obs]). *)

(** {1 Trace-driven load} *)

val run_session : (module Ava_simcl.Api.S) -> work:int -> bool
(** One tenant session: set up a small vec-add pipeline, enqueue [work]
    kernel iterations, read back and bit-check the result, release
    every object (keeping the record log proportional to live state).
    Returns whether the bytes checked out.  Must run inside a
    simulation process. *)

type trace_result = {
  tr_sessions : int;  (** sessions completed *)
  tr_failures : int;  (** sessions with wrong bytes or API failure *)
  tr_retired : int;  (** tenants retired cleanly *)
  tr_makespan : Time.t;  (** virtual completion time of the last tenant *)
}

val run_trace : t -> Tracegen.event list -> trace_result
(** Drive a generated trace: one process per tenant admits at its
    arrival time, runs its sessions ({!run_session}) no earlier than
    their timestamps, and retires at departure.  Runs the engine to
    completion (stopping gossip/rebalancer processes once every tenant
    is done) and returns the aggregate result. *)
