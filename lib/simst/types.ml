(* SimST public types: a CUDA-driver-flavored stream accelerator — the
   asynchronous, stream-ordered API family (§2, §3.2) whose completion
   points and enqueue semantics the spec language must express. *)

type stream_handle = int
type event_handle = int
type mem_handle = int

type status =
  | St_invalid_value
  | St_out_of_memory
  | St_not_ready
  | St_queue_full
  | St_device_lost
  | St_fail

let status_to_string = function
  | St_invalid_value -> "ST_ERROR_INVALID_VALUE"
  | St_out_of_memory -> "ST_ERROR_OUT_OF_MEMORY"
  | St_not_ready -> "ST_ERROR_NOT_READY"
  | St_queue_full -> "ST_ERROR_QUEUE_FULL"
  | St_device_lost -> "ST_ERROR_DEVICE_LOST"
  | St_fail -> "ST_ERROR_UNKNOWN"

let status_to_code = function
  | St_invalid_value -> -1
  | St_out_of_memory -> -2
  | St_not_ready -> -3
  | St_queue_full -> -4
  | St_device_lost -> -5
  | St_fail -> -6

let status_of_code = function
  | -1 -> St_invalid_value
  | -2 -> St_out_of_memory
  | -3 -> St_not_ready
  | -4 -> St_queue_full
  | -5 -> St_device_lost
  | _ -> St_fail

type 'a result = ('a, status) Stdlib.result

let pp_status ppf s = Fmt.string ppf (status_to_string s)
