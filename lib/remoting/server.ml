(* The API server: a non-privileged host process executing forwarded
   calls against the vendor silo.

   One worker process — and one ['st] instance (e.g. a fresh SimCL native
   stack) — per VM gives the process-level isolation §4.1 requires:
   handles from one guest cannot denote another guest's objects.

   Handles on the wire are guest-assigned ids; the per-VM context maps
   them to host objects ({!Ctx.bind}/{!Ctx.resolve}), which is also the
   hook migration uses to re-bind ids after replay on a new host. *)

module Plan = Ava_codegen.Plan
module Transport = Ava_transport.Transport
module Obs = Ava_obs.Obs
module Iommu = Ava_device.Iommu
module Dma = Ava_device.Dma

open Ava_sim

module Ctx = struct
  (* Virtual ids below [first_virtual_id] denote well-known enumerable
     objects (platforms, devices) and pass through unmapped.  Ids the
     server assigns for created objects start at [first_virtual_id]; ids
     the guest pre-assigns (event out-parameters of async calls) start at
     [Stub.first_guest_handle] — disjoint ranges, one map. *)
  let first_virtual_id = 0x1000

  type t = {
    ctx_vm : int;
    handles : (int, int) Hashtbl.t;  (** virtual id -> host handle *)
    mutable next_vid : int;
  }

  let create ~vm_id =
    { ctx_vm = vm_id; handles = Hashtbl.create 32; next_vid = first_virtual_id }

  let vm t = t.ctx_vm

  let fresh t =
    let v = t.next_vid in
    t.next_vid <- v + 1;
    v

  (* The most recently assigned virtual id (used by migration replay to
     re-bind objects to their original ids). *)
  let last_fresh t = t.next_vid - 1
  let next_vid t = t.next_vid

  (* Advance the fresh-id counter to at least [vid].  Migration replay
     onto a fresh context must reserve the source's id range first:
     replay mints a fresh id for each re-created object before
     re-binding it to its original id, and an unreserved counter mints
     ids that collide with originals already re-bound — the mint's bind
     silently overwrites, leaving a guest-held handle dangling. *)
  let reserve t vid = if vid > t.next_vid then t.next_vid <- vid

  let bind t ~guest ~host = Hashtbl.replace t.handles guest host

  let resolve t guest =
    if guest < first_virtual_id then Some guest
    else Hashtbl.find_opt t.handles guest

  (* Reverse lookup: host handle -> virtual id (linear; tables are small
     and this only serves info queries). *)
  let reverse t ~host =
    Hashtbl.fold
      (fun g h acc -> if h = host && acc = None then Some g else acc)
      t.handles None

  let forget t guest = Hashtbl.remove t.handles guest

  let live t = Hashtbl.length t.handles

  let guest_ids t = Hashtbl.fold (fun g _ acc -> g :: acc) t.handles []

  (* Drop every binding (migration rebinds from the replay log). *)
  let clear t = Hashtbl.reset t.handles
end

(* Per-VM content store, the server half of the transfer cache: maps
   payload digests to payloads, bounded in bytes with LRU eviction.  The
   store is an in-memory structure of the front-end process, so a crash/
   restart empties it (refs then miss and NAK, which the stub heals by
   resending the full payload). *)
module Store = struct
  type entry = { se_data : bytes; mutable se_stamp : int }

  type t = {
    st_capacity : int;  (** total payload bytes; 0 disables the store *)
    st_tbl : (int64, entry) Hashtbl.t;
    st_order : (int64 * int) Queue.t;
        (** lazy LRU queue: stale (digest, stamp) pairs are skipped *)
    mutable st_stamp : int;
    mutable st_resident : int;
    mutable st_hits : int;
    mutable st_misses : int;
    mutable st_insertions : int;
    mutable st_evictions : int;
    mutable st_saved_bytes : int;  (** payload bytes served from store *)
    mutable st_rejected : int;  (** announces whose digest didn't verify *)
  }

  let create ~capacity =
    {
      st_capacity = Stdlib.max 0 capacity;
      st_tbl = Hashtbl.create 32;
      st_order = Queue.create ();
      st_stamp = 0;
      st_resident = 0;
      st_hits = 0;
      st_misses = 0;
      st_insertions = 0;
      st_evictions = 0;
      st_saved_bytes = 0;
      st_rejected = 0;
    }

  let touch t digest e =
    t.st_stamp <- t.st_stamp + 1;
    e.se_stamp <- t.st_stamp;
    Queue.push (digest, t.st_stamp) t.st_order

  let rec evict_lru t =
    match Queue.take_opt t.st_order with
    | None -> ()
    | Some (digest, stamp) -> (
        match Hashtbl.find_opt t.st_tbl digest with
        | Some e when e.se_stamp = stamp ->
            Hashtbl.remove t.st_tbl digest;
            t.st_resident <- t.st_resident - Bytes.length e.se_data;
            t.st_evictions <- t.st_evictions + 1
        | _ -> evict_lru t (* stale queue entry: skip *))

  let find t digest =
    match Hashtbl.find_opt t.st_tbl digest with
    | None -> None
    | Some e ->
        touch t digest e;
        Some e.se_data

  let insert t digest data =
    let len = Bytes.length data in
    if t.st_capacity > 0 && len <= t.st_capacity then begin
      match Hashtbl.find_opt t.st_tbl digest with
      | Some e -> touch t digest e (* idempotent re-announce *)
      | None ->
          let e = { se_data = data; se_stamp = 0 } in
          Hashtbl.replace t.st_tbl digest e;
          t.st_resident <- t.st_resident + len;
          t.st_insertions <- t.st_insertions + 1;
          touch t digest e;
          while t.st_resident > t.st_capacity do
            evict_lru t
          done
    end

  (* Drop every resident payload (counters survive): front-end restart
     and migration both empty the store. *)
  let clear t =
    Hashtbl.reset t.st_tbl;
    Queue.clear t.st_order;
    t.st_resident <- 0
end

type cache_stats = {
  cs_hits : int;  (** refs resolved from the store *)
  cs_misses : int;  (** refs that missed (each triggers a NAK digest) *)
  cs_insertions : int;
  cs_evictions : int;
  cs_resident_bytes : int;
  cs_saved_bytes : int;  (** payload bytes served from the store *)
  cs_rejected : int;  (** announces whose digest didn't verify *)
}

(* A handler executes one API function: it gets the per-VM context, the
   per-VM silo state and the raw arguments; it returns
   (status, return-value, out-values). *)
type 'st handler = Ctx.t -> 'st -> Wire.value list -> int * Wire.value * Wire.value list

(* Bounds the per-VM reply log used for idempotent replay of duplicate
   seqs; far above any realistic in-flight window. *)
let replay_cache_cap = 4096

type 'st vm_entry = {
  ve_ctx : Ctx.t;
  mutable ve_state : 'st;
  ve_ep : Transport.endpoint;
  mutable ve_paused : bool;
  mutable ve_resume : (unit -> unit) option;
  mutable ve_crashed : bool;  (** down: incoming messages are lost *)
  mutable ve_detached : bool;
      (** superseded (migration away, or re-attach of the same VM): the
          worker exits at its next wakeup instead of racing the
          replacement for inbox messages *)
  mutable ve_expected : int;  (** next seq to execute, in order *)
  ve_hold : (int, Message.call) Hashtbl.t;
      (** future seqs parked until the gap before them fills *)
  ve_skipped : (int, unit) Hashtbl.t;
      (** future seqs the router policed away (Skip notices) *)
  ve_replay : (int, Message.reply) Hashtbl.t;  (** seq -> sent reply *)
  ve_replay_order : int Queue.t;  (** eviction order for [ve_replay] *)
  ve_store : Store.t;  (** per-VM content store (transfer cache) *)
}

(* TDR watchdog configuration: a dispatched call whose handler has not
   returned after [tdr_factor] times its spec resource estimate (floored
   at [tdr_min_ns]) is declared wedged; [tdr_reset] resets the device and
   the call fails with [status_device_lost].

   [tdr_wedged_by], when provided, names the client wedging the shared
   device so blame lands on the culprit: an innocent VM whose call is
   merely stuck *behind* the wedge triggers the reset but keeps its call
   alive — after the reset unwedges the device the call completes
   normally (Windows-TDR semantics: only the offending context's work is
   killed).  Without the query every timeout is blamed on its own
   call. *)
type tdr = {
  tdr_factor : float;
  tdr_min_ns : Time.t;
  tdr_reset : vm_id:int -> unit;
  tdr_wedged_by : (unit -> int option) option;
}

type 'st t = {
  engine : Engine.t;
  plan : Plan.t;
  handlers : (string, 'st handler) Hashtbl.t;
  make_state : vm_id:int -> 'st;
  mutable vm_entries : (int * 'st vm_entry) list;
  mutable executed : int;
  mutable rejected : int;
  mutable replayed : int;
  mutable restarts : int;
  mutable lost_while_down : int;
  mutable on_call : (vm_id:int -> status:int -> Message.call -> unit) option;
  exec_overhead_ns : Time.t;
  trace : Trace.t option;
  obs : Obs.t option;
  device_id : int;  (** pool device this server fronts; -1 = unpooled *)
  cache_capacity : int;  (** per-VM content-store bound; 0 = cache off *)
  mutable naks_sent : int;  (** cache-miss NAK messages sent *)
  sva : (int, Iommu.t * Dma.t) Hashtbl.t;
      (** per-VM SVA plumbing: the IOMMU resolving mapped-buffer refs
          and the device DMA engine charged for the SG descriptor walk *)
  mutable sva_resolutions : int;  (** calls that resolved ≥1 mapped ref *)
  mutable sva_resolved_bytes : int;
  mutable sva_rejected : int;  (** calls failed on a bad mapped ref *)
  tdr : tdr option;  (** [None]: no watchdog (default) *)
  mutable tdr_resets : int;  (** watchdog-triggered device resets *)
  mutable device_lost : int;  (** calls failed with [status_device_lost] *)
  mutable unexpected_exns : int;
      (** handler exceptions outside the known protocol set — genuine
          bugs, not guest errors *)
}

(* Remoting-level failure codes carried in reply status (disjoint from
   API error codes, which are negative and > -9000). *)
let status_ok = 0
let status_unknown_function = -9001
let status_bad_arguments = -9002
let status_unknown_handle = -9003

(* Synthesized by the guest stub when a call exhausts its retry budget
   (never sent by the server itself). *)
let status_timeout = -9004

(* The device was lost under this call (hung kernel, TDR reset, USB
   unplug); the silo survives and later calls may succeed again. *)
let status_device_lost = -9005

(* Synthesized by the router for calls rejected while their VM is
   quarantined by the circuit breaker (never sent by the server). *)
let status_vm_quarantined = -9006

(* The handler exception protocol: handlers raise these to signal the
   corresponding statuses; anything else escaping a handler is counted
   as an unexpected exception (a bug surfaced, not a guest error). *)
exception Unknown_handle
exception Bad_args
exception Device_lost

let create ?(exec_overhead_ns = Time.ns 800) ?(cache_capacity = 0) ?tdr
    ?trace ?obs ?(device_id = -1) engine ~plan ~make_state =
  {
    engine;
    plan;
    handlers = Hashtbl.create 64;
    make_state;
    vm_entries = [];
    executed = 0;
    rejected = 0;
    replayed = 0;
    restarts = 0;
    lost_while_down = 0;
    on_call = None;
    exec_overhead_ns;
    trace;
    obs;
    device_id;
    cache_capacity = Stdlib.max 0 cache_capacity;
    naks_sent = 0;
    sva = Hashtbl.create 8;
    sva_resolutions = 0;
    sva_resolved_bytes = 0;
    sva_rejected = 0;
    tdr;
    tdr_resets = 0;
    device_lost = 0;
    unexpected_exns = 0;
  }

let record_trace_cat t category fmt =
  match t.trace with
  | Some tr when Trace.is_enabled tr ->
      Trace.record tr ~at:(Engine.now t.engine) ~category fmt
  | _ -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let record_trace t fmt = record_trace_cat t "server" fmt

let register t name handler = Hashtbl.replace t.handlers name handler

let set_call_hook t hook = t.on_call <- Some hook

let executed t = t.executed
let rejected t = t.rejected
let replayed t = t.replayed
let restarts t = t.restarts
let lost_while_down t = t.lost_while_down
let naks_sent t = t.naks_sent
let cache_capacity t = t.cache_capacity
let sva_resolutions t = t.sva_resolutions
let sva_resolved_bytes t = t.sva_resolved_bytes
let sva_rejected t = t.sva_rejected
let tdr_resets t = t.tdr_resets
let device_lost t = t.device_lost
let unexpected_exns t = t.unexpected_exns
let device_id t = t.device_id

let find_vm t vm_id = List.assoc_opt vm_id t.vm_entries

let stats_of_store (s : Store.t) =
  {
    cs_hits = s.Store.st_hits;
    cs_misses = s.Store.st_misses;
    cs_insertions = s.Store.st_insertions;
    cs_evictions = s.Store.st_evictions;
    cs_resident_bytes = s.Store.st_resident;
    cs_saved_bytes = s.Store.st_saved_bytes;
    cs_rejected = s.Store.st_rejected;
  }

let cache_stats t ~vm_id = Option.map (fun e -> stats_of_store e.ve_store) (find_vm t vm_id)

(* Aggregate content-store counters across all attached VMs. *)
let cache_totals t =
  List.fold_left
    (fun acc (_, e) ->
      let s = stats_of_store e.ve_store in
      {
        cs_hits = acc.cs_hits + s.cs_hits;
        cs_misses = acc.cs_misses + s.cs_misses;
        cs_insertions = acc.cs_insertions + s.cs_insertions;
        cs_evictions = acc.cs_evictions + s.cs_evictions;
        cs_resident_bytes = acc.cs_resident_bytes + s.cs_resident_bytes;
        cs_saved_bytes = acc.cs_saved_bytes + s.cs_saved_bytes;
        cs_rejected = acc.cs_rejected + s.cs_rejected;
      })
    {
      cs_hits = 0;
      cs_misses = 0;
      cs_insertions = 0;
      cs_evictions = 0;
      cs_resident_bytes = 0;
      cs_saved_bytes = 0;
      cs_rejected = 0;
    }
    t.vm_entries

(* Empty a VM's content store (migration: the destination silo starts
   with no resident payloads; the guest's stale refs heal via NAK). *)
let flush_cache t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.flush_cache: unknown vm"
  | Some e -> Store.clear e.ve_store

(* Arm SVA resolution for a VM: mapped-buffer refs in its calls resolve
   through [iommu], and the SG descriptor walk is charged to [dma] (the
   device this server fronts). *)
let set_sva t ~vm_id ~iommu ~dma = Hashtbl.replace t.sva vm_id (iommu, dma)
let clear_sva t ~vm_id = Hashtbl.remove t.sva vm_id
let sva_for t ~vm_id = Hashtbl.find_opt t.sva vm_id

(* Map a handler exception to a reply status.  The known protocol
   exceptions are guest-attributable; anything else is a server-side bug
   and is counted loudly rather than silently masquerading as a guest
   error. *)
let classify_exn t entry (c : Message.call) = function
  | Unknown_handle ->
      t.rejected <- t.rejected + 1;
      (status_unknown_handle, Wire.Unit, [])
  | Bad_args ->
      t.rejected <- t.rejected + 1;
      (status_bad_arguments, Wire.Unit, [])
  | Device_lost ->
      t.device_lost <- t.device_lost + 1;
      (status_device_lost, Wire.Unit, [])
  | e ->
      t.unexpected_exns <- t.unexpected_exns + 1;
      t.rejected <- t.rejected + 1;
      record_trace t "vm%d %s seq=%d UNEXPECTED exception %s"
        entry.ve_ctx.Ctx.ctx_vm c.Message.call_fn c.Message.call_seq
        (Printexc.to_string e);
      (status_bad_arguments, Wire.Unit, [])

(* The watchdog's execution budget for one call: the spec resource
   estimate (same cost model the router's WFQ uses) converted with the
   router's conservative cost->ns factor, scaled by the allowance
   factor, floored at [tdr_min_ns] so chatty zero-cost calls are never
   reset during normal queue drain. *)
let tdr_budget t (tdr : tdr) (c : Message.call) =
  let cost =
    match Plan.find t.plan c.Message.call_fn with
    | None -> 1.0
    | Some plan -> (
        let env =
          try
            List.fold_left2
              (fun env (name, action) v ->
                match (action, Wire.to_int v) with
                | Plan.Pass_scalar, Some n -> (name, n) :: env
                | _ -> env)
              [] plan.Plan.cp_params c.Message.call_args
          with Invalid_argument _ -> []
        in
        match Plan.resource_estimate plan ~env "device_time" with
        | Some c -> float_of_int (Stdlib.max 1 c)
        | None -> (
            match Plan.resource_estimate plan ~env "bus_bytes" with
            | Some b -> float_of_int (Stdlib.max 1 (b / 64))
            | None -> 1.0))
  in
  Time.max tdr.tdr_min_ns (int_of_float (cost *. 0.02 *. tdr.tdr_factor))

(* Dispatch one handler.  Without a watchdog this is a plain call.  With
   one, the handler runs in a child process raced against a timer: if
   the budget elapses first the device is reset (unwedging the command
   processor, so the abandoned handler still unblocks and finishes
   harmlessly) and the call fails with [status_device_lost]. *)
let run_handler t entry handler (c : Message.call) =
  match t.tdr with
  | None -> (
      match handler entry.ve_ctx entry.ve_state c.Message.call_args with
      | result ->
          t.executed <- t.executed + 1;
          result
      | exception e -> classify_exn t entry c e)
  | Some tdr -> (
      let iv = Ivar.create () in
      Engine.spawn t.engine
        ~name:
          (Printf.sprintf "ava-server-exec-vm%d" entry.ve_ctx.Ctx.ctx_vm)
        (fun () ->
          match handler entry.ve_ctx entry.ve_state c.Message.call_args with
          | r -> Ivar.fill_if_empty iv (`Returned r)
          | exception e -> Ivar.fill_if_empty iv (`Raised e));
      Engine.spawn t.engine
        ~name:(Printf.sprintf "ava-server-tdr-vm%d" entry.ve_ctx.Ctx.ctx_vm)
        (fun () ->
          Engine.delay (tdr_budget t tdr c);
          if not (Ivar.is_filled iv) then begin
            let self = entry.ve_ctx.Ctx.ctx_vm in
            let reset verdict =
              t.tdr_resets <- t.tdr_resets + 1;
              record_trace_cat t "tdr" "vm%d %s seq=%d watchdog reset (%s)"
                self c.Message.call_fn c.Message.call_seq verdict;
              tdr.tdr_reset ~vm_id:self
            in
            (match tdr.tdr_wedged_by with
            | None ->
                (* No blame query: every timeout is this call's fault. *)
                reset "blamed";
                Ivar.fill_if_empty iv `Timed_out
            | Some wedged_by -> (
                match wedged_by () with
                | Some culprit when culprit = self ->
                    reset "guilty";
                    Ivar.fill_if_empty iv `Timed_out
                | Some _ ->
                    (* Stuck behind another client's wedge: unwedge the
                       device and let this call finish on its own. *)
                    reset "innocent bystander"
                | None ->
                    (* Device not wedged — the call is slow, not hung
                       (e.g. draining a deep queue after a reset).  Let
                       it run; the simulated device always completes
                       un-wedged work. *)
                    ()))
          end);
      match Ivar.read iv with
      | `Returned result ->
          t.executed <- t.executed + 1;
          result
      | `Raised e -> classify_exn t entry c e
      | `Timed_out ->
          t.device_lost <- t.device_lost + 1;
          (status_device_lost, Wire.Unit, []))

(* Run one call against a VM's state; no reply is sent. *)
let execute_call t entry (c : Message.call) =
  Engine.delay t.exec_overhead_ns;
  let obs_mark m =
    match t.obs with
    | Some o ->
        Obs.mark o ~vm:entry.ve_ctx.Ctx.ctx_vm ~seq:c.Message.call_seq m
          ~at:(Engine.now t.engine)
    | None -> ()
  in
  (match t.obs with
  | Some o when t.device_id >= 0 ->
      Obs.set_device o ~vm:entry.ve_ctx.Ctx.ctx_vm ~seq:c.Message.call_seq
        ~device:t.device_id
  | _ -> ());
  obs_mark Obs.M_exec_start;
  let ((status, _, _) as result) =
    match Hashtbl.find_opt t.handlers c.Message.call_fn with
    | None ->
        t.rejected <- t.rejected + 1;
        (status_unknown_function, Wire.Unit, [])
    | Some handler -> run_handler t entry handler c
  in
  obs_mark Obs.M_exec_end;
  record_trace t "vm%d %s seq=%d status=%d" entry.ve_ctx.Ctx.ctx_vm
    c.Message.call_fn c.Message.call_seq status;
  (match t.on_call with
  | Some hook -> hook ~vm_id:entry.ve_ctx.Ctx.ctx_vm ~status c
  | None -> ());
  result

(* Cache a sent reply for idempotent replay of duplicate seqs (stub
   retransmissions, router requeues after a restart). *)
let cache_reply entry seq reply =
  Hashtbl.replace entry.ve_replay seq reply;
  Queue.push seq entry.ve_replay_order;
  if Queue.length entry.ve_replay_order > replay_cache_cap then
    Hashtbl.remove entry.ve_replay (Queue.pop entry.ve_replay_order)

let run_call t entry (c : Message.call) =
  let status, ret, outs = execute_call t entry c in
  let reply =
    {
      Message.reply_seq = c.Message.call_seq;
      reply_status = status;
      reply_ret = ret;
      reply_outs = outs;
    }
  in
  cache_reply entry c.Message.call_seq reply;
  Transport.send entry.ve_ep (Message.encode (Message.Reply reply))

(* --- transfer-cache resolution ----------------------------------------- *)

let rec has_cache_values = function
  | Wire.Blob_cached _ | Wire.Blob_ref _ -> true
  | Wire.List vs -> List.exists has_cache_values vs
  | Wire.Unit | Wire.I64 _ | Wire.F64 _ | Wire.Str _ | Wire.Blob _
  | Wire.Handle _ | Wire.Mapped_ref _ ->
      false

(* Rewrite cache values back to plain [Blob]s before dispatch, so
   handlers, the reply log and the migration recorder only ever see
   resolved payloads.  [Blob_cached] verifies its digest before entering
   the store — a corrupt or forged announce must never poison it (the
   payload itself is still used verbatim: content addressing only
   guarantees store integrity, end-to-end payload integrity is the
   checksum envelope's job).  [Error] carries the digests of missing
   refs. *)
let resolve_args store args =
  let missing = ref [] in
  let rec resolve v =
    match v with
    | Wire.Blob_cached { bc_digest; bc_data } ->
        if Int64.equal (Wire.digest bc_data) bc_digest then
          Store.insert store bc_digest bc_data
        else store.Store.st_rejected <- store.Store.st_rejected + 1;
        Wire.Blob bc_data
    | Wire.Blob_ref { br_digest; br_size } -> (
        match Store.find store br_digest with
        | Some data when Bytes.length data = br_size ->
            store.Store.st_hits <- store.Store.st_hits + 1;
            store.Store.st_saved_bytes <-
              store.Store.st_saved_bytes + br_size;
            Wire.Blob data
        | Some _ | None ->
            (* A size mismatch is treated as a miss: never hand a handler
               a payload the guest didn't describe. *)
            store.Store.st_misses <- store.Store.st_misses + 1;
            missing := br_digest :: !missing;
            v)
    | Wire.List vs -> Wire.List (List.map resolve vs)
    | v -> v
  in
  if not (List.exists has_cache_values args) then Ok args
  else
    let args' = List.map resolve args in
    if !missing = [] then Ok args' else Error (List.rev !missing)

(* --- SVA (mapped-buffer reference) resolution -------------------------- *)

let rec has_mapped_refs = function
  | Wire.Mapped_ref _ -> true
  | Wire.List vs -> List.exists has_mapped_refs vs
  | Wire.Unit | Wire.I64 _ | Wire.F64 _ | Wire.Str _ | Wire.Blob _
  | Wire.Handle _ | Wire.Blob_ref _ | Wire.Blob_cached _ ->
      false

(* Rewrite mapped-buffer refs back to plain [Blob]s through the VM's
   IOMMU, so handlers, the reply log and the migration recorder only
   ever see resolved payloads (same invariant as the transfer cache).
   One scatter-gather descriptor chain covers every ref in the call:
   descriptor setup plus the per-page IOTLB walk are charged here, but
   no bandwidth — the payload streams later on the handler's ordinary
   DMA path, straight from the pinned guest pages. *)
let resolve_sva t entry args =
  if not (List.exists has_mapped_refs args) then Ok args
  else
    match Hashtbl.find_opt t.sva entry.ve_ctx.Ctx.ctx_vm with
    | None -> Error "mapped ref from a VM with no SVA context"
    | Some (iommu, dma) -> (
        let segs = ref [] and failure = ref None in
        let rec resolve v =
          match v with
          | Wire.Mapped_ref { mr_iova; mr_size } -> (
              match Iommu.translate iommu ~iova:mr_iova ~size:mr_size with
              | Ok data ->
                  segs := mr_size :: !segs;
                  Wire.Blob data
              | Error msg ->
                  if !failure = None then failure := Some msg;
                  v)
          | Wire.List vs -> Wire.List (List.map resolve vs)
          | v -> v
        in
        let args' = List.map resolve args in
        match !failure with
        | Some msg -> Error msg
        | None ->
            let segs = List.rev !segs in
            Dma.transfer_sg ~stream:false
              ~per_page_ns:(Iommu.timing iommu).Ava_device.Timing.iotlb_walk_ns
              dma ~segs;
            t.sva_resolutions <- t.sva_resolutions + 1;
            t.sva_resolved_bytes <-
              t.sva_resolved_bytes + List.fold_left ( + ) 0 segs;
            Ok args')

(* Execute the call at [ve_expected] if its payloads resolve; on a cache
   miss, NAK the missing digests and leave [ve_expected] in place — the
   stub's full-payload resend arrives under the same seq and goes through
   the normal in-order path.  A bad mapped-buffer ref is the guest's
   fault, not a transient miss: the call is consumed with
   [status_bad_arguments] (resending the same ref could never heal it,
   so a NAK here would loop forever). *)
let try_run t entry (c : Message.call) =
  match resolve_args entry.ve_store c.Message.call_args with
  | Ok args -> (
      match resolve_sva t entry args with
      | Ok args ->
          entry.ve_expected <- c.Message.call_seq + 1;
          run_call t entry { c with Message.call_args = args };
          true
      | Error msg ->
          t.sva_rejected <- t.sva_rejected + 1;
          t.rejected <- t.rejected + 1;
          record_trace_cat t "sva" "vm%d seq=%d bad mapped ref: %s"
            entry.ve_ctx.Ctx.ctx_vm c.Message.call_seq msg;
          entry.ve_expected <- c.Message.call_seq + 1;
          let reply =
            {
              Message.reply_seq = c.Message.call_seq;
              reply_status = status_bad_arguments;
              reply_ret = Wire.Unit;
              reply_outs = [];
            }
          in
          cache_reply entry c.Message.call_seq reply;
          Transport.send entry.ve_ep (Message.encode (Message.Reply reply));
          true)
  | Error missing ->
      t.naks_sent <- t.naks_sent + 1;
      record_trace_cat t "cache" "vm%d nak seq=%d missing=%d"
        entry.ve_ctx.Ctx.ctx_vm c.Message.call_seq (List.length missing);
      Transport.send entry.ve_ep
        (Message.encode
           (Message.Nak
              {
                nak_vm = entry.ve_ctx.Ctx.ctx_vm;
                nak_seq = c.Message.call_seq;
                nak_digests = missing;
              }));
      false

(* Drain consecutively parked/skipped seqs now that the gap closed.  A
   parked call that misses the store is dropped after its NAK — the full
   resend re-delivers it at [ve_expected]. *)
let rec advance t entry =
  let seq = entry.ve_expected in
  match Hashtbl.find_opt entry.ve_hold seq with
  | Some c ->
      Hashtbl.remove entry.ve_hold seq;
      if try_run t entry c then advance t entry
  | None ->
      if Hashtbl.mem entry.ve_skipped seq then begin
        Hashtbl.remove entry.ve_skipped seq;
        entry.ve_expected <- seq + 1;
        advance t entry
      end

(* Per-VM calls execute strictly in seq order.  Under fault injection a
   call can arrive late (retransmission) or twice (duplicate delivery);
   executing out of order would reorder argument updates against
   launches, so future seqs park in [ve_hold] until the gap fills, and
   seqs already executed replay their cached reply without touching the
   silo. *)
let handle_call t entry (c : Message.call) =
  let seq = c.Message.call_seq in
  if seq < entry.ve_expected then (
    (* Duplicate of an executed (or skipped) call: idempotent replay. *)
    match Hashtbl.find_opt entry.ve_replay seq with
    | Some r ->
        t.replayed <- t.replayed + 1;
        record_trace t "vm%d replay seq=%d" entry.ve_ctx.Ctx.ctx_vm seq;
        Transport.send entry.ve_ep (Message.encode (Message.Reply r))
    | None ->
        (* A router-skipped seq (the guest already holds its rejection
           reply) or an evicted cache entry: nothing to say. *)
        ())
  else if seq = entry.ve_expected then begin
    if try_run t entry c then advance t entry
  end
  else Hashtbl.replace entry.ve_hold seq c

let handle_skip t entry seqs =
  List.iter
    (fun s ->
      if s >= entry.ve_expected then Hashtbl.replace entry.ve_skipped s ())
    seqs;
  advance t entry

(* Detach a VM: drop its entry and tell its worker to exit at the next
   wakeup.  Migration away from this server must detach, or a later
   migration *back* would leave two workers racing for the same VM's
   messages (and [find_vm] finding a stale silo). *)
let detach_vm t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.detach_vm: unknown vm"
  | Some e ->
      e.ve_detached <- true;
      (* Unblock a worker parked in the paused-state await so it can
         observe the detach flag and exit. *)
      (match e.ve_resume with
      | Some resume ->
          e.ve_resume <- None;
          resume ()
      | None -> ());
      t.vm_entries <- List.remove_assoc vm_id t.vm_entries;
      Hashtbl.remove t.sva vm_id;
      record_trace t "vm%d detached" vm_id

(* Attach a VM: spawn its worker process draining its endpoint.  A
   leftover entry for the same VM (a previous residency the pool never
   detached) is superseded, never raced. *)
let attach_vm t ~vm_id ~ep =
  if List.mem_assoc vm_id t.vm_entries then detach_vm t ~vm_id;
  let entry =
    {
      ve_ctx = Ctx.create ~vm_id;
      ve_state = t.make_state ~vm_id;
      ve_ep = ep;
      ve_paused = false;
      ve_resume = None;
      ve_crashed = false;
      ve_detached = false;
      ve_expected = 0;
      ve_hold = Hashtbl.create 16;
      ve_skipped = Hashtbl.create 16;
      ve_replay = Hashtbl.create 64;
      ve_replay_order = Queue.create ();
      ve_store = Store.create ~capacity:t.cache_capacity;
    }
  in
  t.vm_entries <- (vm_id, entry) :: t.vm_entries;
  Engine.spawn t.engine ~name:(Printf.sprintf "ava-server-vm%d" vm_id)
    (fun () ->
      let rec loop () =
        if entry.ve_detached then ()
        else begin
          let data = Transport.recv ep in
          if entry.ve_paused && not entry.ve_detached then
            (* Migration in progress: stall new work until resumed. *)
            Engine.await (fun resume -> entry.ve_resume <- Some resume);
          if entry.ve_detached then
            (* Superseded while blocked: anything still arriving on the
               old endpoint belongs to a flow the router already
               re-steered; drop it and exit. *)
            ()
          else begin
            if entry.ve_crashed then
              (* Server down: the message is lost; the stub's
                 retransmission (or the router's requeue on restart)
                 recovers it. *)
              t.lost_while_down <- t.lost_while_down + 1
            else
              (match Message.decode data with
              | Ok (Message.Call c) -> handle_call t entry c
              | Ok (Message.Batch calls) ->
                  List.iter (handle_call t entry) calls
              | Ok (Message.Skip s) -> handle_skip t entry s.Message.skip_seqs
              | Ok (Message.Reply _) | Ok (Message.Upcall _)
              | Ok (Message.Nak _)
              | Error _ ->
                  t.rejected <- t.rejected + 1);
            loop ()
          end
        end
      in
      loop ());
  entry

(* Crash/restart model: while crashed the worker stays alive but every
   incoming message is lost, like an API server that died and whose
   socket drops traffic until it is restarted.  Silo state and the reply
   log survive (device state outlives a front-end process bounce);
   in-flight calls are the losses, recovered by stub retransmission and
   {!Router.requeue_in_flight}. *)
let crash t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.crash: unknown vm"
  | Some e ->
      e.ve_crashed <- true;
      record_trace t "vm%d server crash" vm_id

let restart t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.restart: unknown vm"
  | Some e ->
      if e.ve_crashed then begin
        e.ve_crashed <- false;
        t.restarts <- t.restarts + 1;
        (* The content store is front-end process memory: a restart loses
           it.  Stale refs from the guest then miss and NAK. *)
        Store.clear e.ve_store;
        record_trace t "vm%d server restart" vm_id
      end

let is_crashed t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.is_crashed: unknown vm"
  | Some e -> e.ve_crashed

(* Fast-forward the in-order cursor after a migration: replayed log
   entries run with seq 0 (outside the live window), so the destination
   entry must be told where the guest's live seq stream resumes or every
   steered call would park as a future seq. *)
let set_expected t ~vm_id ~seq =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.set_expected: unknown vm"
  | Some e -> e.ve_expected <- seq

(* Snapshot / restore the per-VM reply log across a migration.  The
   destination's in-order cursor starts past every seq the source
   already executed, so a retransmission of such a seq arrives as a
   duplicate — and a duplicate can only be answered from the reply
   log.  Without carrying the log over, a reply lost on the guest link
   just before the move becomes unhealable: the destination has
   nothing to replay and the stub retries to exhaustion. *)
let export_replies t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.export_replies: unknown vm"
  | Some e ->
      List.sort
        (fun (a, _) (b, _) -> Stdlib.compare a b)
        (Hashtbl.fold (fun seq reply acc -> (seq, reply) :: acc) e.ve_replay [])

let import_replies t ~vm_id replies =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.import_replies: unknown vm"
  | Some e ->
      List.iter
        (fun (seq, reply) ->
          if not (Hashtbl.mem e.ve_replay seq) then cache_reply e seq reply)
        replies

(* Suspend/resume a VM's worker (used by migration §4.3). *)
let pause_vm t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.pause_vm: unknown vm"
  | Some e -> e.ve_paused <- true

let resume_vm t ~vm_id =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.resume_vm: unknown vm"
  | Some e ->
      e.ve_paused <- false;
      (match e.ve_resume with
      | Some resume ->
          e.ve_resume <- None;
          resume ()
      | None -> ())

let vm_ctx t ~vm_id = Option.map (fun e -> e.ve_ctx) (find_vm t vm_id)
let vm_state t ~vm_id = Option.map (fun e -> e.ve_state) (find_vm t vm_id)

(* Invoke a guest callback: send an upcall message back over the VM's
   endpoint (spec [callback] parameters). *)
let upcall t ~vm_id ~cb ~args =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.upcall: unknown vm"
  | Some entry ->
      Transport.send entry.ve_ep
        (Message.encode
           (Message.Upcall { up_vm = vm_id; up_cb = cb; up_args = args }))

(* Execute a call directly against a VM's state, bypassing transport —
   used by migration replay.  Must run inside a process. *)
let execute_direct t ~vm_id (c : Message.call) =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.execute_direct: unknown vm"
  | Some entry -> execute_call t entry c

(* Swap in a fresh silo state for a VM (migration to a new host/device);
   the old state is returned for snapshotting. *)
let replace_state t ~vm_id state =
  match find_vm t vm_id with
  | None -> invalid_arg "Server.replace_state: unknown vm"
  | Some entry ->
      let old = entry.ve_state in
      entry.ve_state <- state;
      old
