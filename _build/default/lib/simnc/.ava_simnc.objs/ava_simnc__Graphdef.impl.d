lib/simnc/graphdef.ml: Bytes Int32 Int64 List String
