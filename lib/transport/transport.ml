(* Pluggable message transports.

   A transport moves opaque byte messages between two parties with a
   configurable cost model; AvA's guest library, router and API server are
   connected by pairs of endpoints.  Because endpoints are symmetric
   values, topologies are free: guest<->router<->server for
   hypervisor-interposed remoting, guest<->server for vCUDA-style
   user-space RPC, or guest<->remote-server for disaggregation.

   Cost model per direction:
   - [per_msg_ns]   sender-side fixed cost (marshalled descriptor, kick)
   - [bytes_per_s]  sender-side streaming cost (copy into the channel)
   - [deliver_ns]   in-flight latency (notification/interrupt/network);
                    deliveries pipeline, so back-to-back messages overlap
                    their delivery latency as on real links. *)

open Ava_sim

type cost = { per_msg_ns : Time.t; bytes_per_s : float; deliver_ns : Time.t }

let free_cost = { per_msg_ns = 0; bytes_per_s = infinity; deliver_ns = 0 }

type stats = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
}

(* One outgoing message may fan out into zero (dropped), one, or several
   (duplicated) deliveries, each optionally carrying extra latency. *)
type delivery = { d_payload : bytes; d_extra_ns : Time.t }

(* Doorbell coalescing (virtio event-suppression style): on a ring
   transport the dominant per-message cost is the notify —
   [deliver_ns], a hypercall-plus-interrupt round.  With a doorbell
   armed, a slot written while the peer is still draining earlier slots
   — or within the [db_poll_ns] grace window the peer keeps polling
   after its last drained slot before re-arming the interrupt (NAPI /
   virtio EVENT_IDX) — needs no notify at all: the drain or the poll
   picks it up [db_slot_ns] after the slot before it.  Otherwise slots
   accumulate and one notify covers the whole batch, rung when
   [db_batch] slots are pending, when the oldest has waited
   [db_horizon_ns], or immediately for a [~kick:true] send (synchronous
   calls: the caller is already committed to a round trip). *)
type doorbell_cfg = {
  db_horizon_ns : Time.t;  (** max time the oldest pending slot waits *)
  db_batch : int;  (** pending-slot count forcing an immediate flush *)
  db_slot_ns : Time.t;  (** peer-side per-slot drain spacing *)
  db_poll_ns : Time.t;
      (** adaptive-poll grace: how long the peer keeps polling the ring
          after its last drained slot before re-arming the interrupt *)
}

let default_doorbell =
  {
    db_horizon_ns = Time.ns 800;
    db_batch = 8;
    db_slot_ns = Time.ns 100;
    (* NAPI / busy-poll style: a worker that just drained a slot stays
       in its poll loop for a few round trips before sleeping. *)
    db_poll_ns = Time.ns 25_000;
  }

type doorbell = {
  db_cfg : doorbell_cfg;
  mutable db_pending : (bytes * (Time.t -> unit) option) list;
      (** newest first; flushed oldest first *)
  mutable db_drain_until : Time.t;
      (** last scheduled slot delivery; the peer keeps polling for
          [db_poll_ns] past it before re-arming the interrupt *)
  mutable db_gen : int;  (** arm generation, invalidates stale timers *)
  mutable db_notifies : int;
  mutable db_suppressed : int;
  mutable db_forced : int;  (** flushes forced by the batch cap *)
}

type endpoint = {
  engine : Engine.t;
  out_cost : cost;
  peer : bytes Channel.t;  (** peer's inbox *)
  inbox : bytes Channel.t;
  stats : stats;
  mutable send_hook : (bytes -> delivery list) option;
  mutable recv_hook : (bytes -> bytes option) option;
  mutable last_delivery_at : Time.t;
      (** FIFO clamp for hooked sends: extra fault delays never reorder
          messages on a link (as on TCP-like in-order transports) *)
  mutable doorbell : doorbell option;
  mutable peer_ep : endpoint option;
      (** the other end of the duplex link; a send on this end counts
          as peer-worker activity, refreshing the poll window of any
          doorbell armed over there *)
}

let set_send_hook ep hook = ep.send_hook <- hook
let set_recv_hook ep hook = ep.recv_hook <- hook

let set_doorbell ?(cfg = default_doorbell) ep =
  ep.doorbell <-
    Some
      {
        db_cfg = cfg;
        db_pending = [];
        db_drain_until = 0;
        db_gen = 0;
        db_notifies = 0;
        db_suppressed = 0;
        db_forced = 0;
      }

let doorbell_armed ep = ep.doorbell <> None

let db_counter f ep = match ep.doorbell with None -> 0 | Some db -> f db

let db_notifies ep = db_counter (fun db -> db.db_notifies) ep
let db_suppressed ep = db_counter (fun db -> db.db_suppressed) ep
let db_forced_flushes ep = db_counter (fun db -> db.db_forced) ep
let db_pending ep = db_counter (fun db -> List.length db.db_pending) ep

(* Ring the doorbell: one notify, then the peer drains the batch one
   slot per [db_slot_ns].  The first slot lands no earlier than the
   drain of any previous batch (ring slots are consumed in order). *)
let db_flush ep db =
  match List.rev db.db_pending with
  | [] -> ()
  | slots ->
      db.db_pending <- [];
      db.db_gen <- db.db_gen + 1;
      db.db_notifies <- db.db_notifies + 1;
      let now = Engine.now ep.engine in
      let first =
        Stdlib.max
          (now + ep.out_cost.deliver_ns)
          (db.db_drain_until + db.db_cfg.db_slot_ns)
      in
      List.iteri
        (fun i (payload, on_scheduled) ->
          let at = first + (i * db.db_cfg.db_slot_ns) in
          db.db_drain_until <- at;
          (match on_scheduled with Some f -> f now | None -> ());
          Engine.schedule ep.engine ~at (fun () ->
              Channel.send ep.peer payload))
        slots

let db_enqueue ep db ~kick ~on_scheduled msg =
  let now = Engine.now ep.engine in
  if
    db.db_pending = []
    && db.db_drain_until > 0
    && now <= db.db_drain_until + db.db_cfg.db_poll_ns
  then begin
    (* The peer is still draining earlier slots, or polling within the
       grace window after its last drained slot: this one rides along,
       no notify needed at all (kicked or not — the poller sees the
       slot without an interrupt). *)
    let at =
      Stdlib.max now db.db_drain_until + db.db_cfg.db_slot_ns
    in
    db.db_drain_until <- at;
    db.db_suppressed <- db.db_suppressed + 1;
    (match on_scheduled with Some f -> f now | None -> ());
    Engine.schedule ep.engine ~at (fun () -> Channel.send ep.peer msg)
  end
  else begin
    let was_empty = db.db_pending = [] in
    db.db_pending <- (msg, on_scheduled) :: db.db_pending;
    if kick then db_flush ep db
    else if List.length db.db_pending >= db.db_cfg.db_batch then begin
      db.db_forced <- db.db_forced + 1;
      db_flush ep db
    end
    else if was_empty then begin
      (* Arm the flush horizon for this batch; a flush bumps the
         generation, so a timer that outlives its batch is inert. *)
      let gen = db.db_gen in
      Engine.schedule_after ep.engine db.db_cfg.db_horizon_ns (fun () ->
          match ep.doorbell with
          | Some db when db.db_gen = gen -> db_flush ep db
          | _ -> ())
    end
  end

let send ?(kick = false) ?on_scheduled ep msg =
  let len = Bytes.length msg in
  Engine.delay ep.out_cost.per_msg_ns;
  if Float.is_finite ep.out_cost.bytes_per_s then
    Engine.delay
      (Time.of_bandwidth ~bytes:len ~bytes_per_s:ep.out_cost.bytes_per_s);
  ep.stats.sent_msgs <- ep.stats.sent_msgs + 1;
  ep.stats.sent_bytes <- ep.stats.sent_bytes + len;
  (* Posting on this end means the worker behind it is awake and about
     to re-poll the opposite ring (an API server that just replied
     checks for the next request before sleeping) — so refresh the
     poll window of a doorbell armed on the other end. *)
  (match ep.peer_ep with
  | Some peer -> (
      match peer.doorbell with
      | Some db ->
          db.db_drain_until <-
            Stdlib.max db.db_drain_until (Engine.now ep.engine)
      | None -> ())
  | None -> ());
  match (ep.doorbell, ep.send_hook) with
  | Some db, None -> db_enqueue ep db ~kick ~on_scheduled msg
  | None, None ->
      (* The hook-free path is byte-for-byte the historical one, so a
         stack without fault injection times identically.
         [on_scheduled] fires only on doorbell-armed endpoints, keeping
         the observability of this path unchanged too. *)
      if ep.out_cost.deliver_ns = 0 then Channel.send ep.peer msg
      else
        Engine.schedule_after ep.engine ep.out_cost.deliver_ns (fun () ->
            Channel.send ep.peer msg)
  | _, Some hook ->
      (* Fault injection owns the delivery schedule: a doorbell on the
         same endpoint is ignored (the combination is not modelled). *)
      List.iter
        (fun { d_payload; d_extra_ns } ->
          let now = Engine.now ep.engine in
          let at = now + ep.out_cost.deliver_ns + Stdlib.max 0 d_extra_ns in
          let at = Stdlib.max at ep.last_delivery_at in
          ep.last_delivery_at <- at;
          if at <= now then Channel.send ep.peer d_payload
          else
            Engine.schedule ep.engine ~at (fun () ->
                Channel.send ep.peer d_payload))
        (hook msg)

let rec recv ep =
  let msg = Channel.recv ep.inbox in
  match ep.recv_hook with
  | None ->
      ep.stats.recv_msgs <- ep.stats.recv_msgs + 1;
      msg
  | Some hook -> (
      match hook msg with
      | Some msg ->
          ep.stats.recv_msgs <- ep.stats.recv_msgs + 1;
          msg
      | None -> recv ep (* discarded (e.g. failed checksum): keep waiting *))

let rec try_recv ep =
  match Channel.try_recv ep.inbox with
  | Some msg -> (
      match ep.recv_hook with
      | None ->
          ep.stats.recv_msgs <- ep.stats.recv_msgs + 1;
          Some msg
      | Some hook -> (
          match hook msg with
          | Some msg ->
              ep.stats.recv_msgs <- ep.stats.recv_msgs + 1;
              Some msg
          | None -> try_recv ep))
  | None -> None

let pending ep = Channel.length ep.inbox
let stats ep = ep.stats

(* Build a bidirectional link; returns the two ends. *)
let duplex engine ~a_to_b ~b_to_a =
  let inbox_a = Channel.create () and inbox_b = Channel.create () in
  let mk out_cost peer inbox =
    {
      engine;
      out_cost;
      peer;
      inbox;
      stats = { sent_msgs = 0; sent_bytes = 0; recv_msgs = 0 };
      send_hook = None;
      recv_hook = None;
      last_delivery_at = 0;
      doorbell = None;
      peer_ep = None;
    }
  in
  let a = mk a_to_b inbox_b inbox_a and b = mk b_to_a inbox_a inbox_b in
  a.peer_ep <- Some b;
  b.peer_ep <- Some a;
  (a, b)

(* Canned transports, parameterized by the virtualization timing set. *)

(* In-process, cost-free: unit tests and native baselines. *)
let direct engine = duplex engine ~a_to_b:free_cost ~b_to_a:free_cost

(* Hypervisor-managed shared-memory ring (SVGA-style FIFO): the
   interposable transport AvA prefers. *)
let shm_ring engine ~(virt : Ava_device.Timing.virt) =
  let c =
    {
      per_msg_ns = Time.ns 300;
      bytes_per_s = virt.Ava_device.Timing.ring_bytes_per_s;
      deliver_ns = virt.Ava_device.Timing.ring_notify_ns;
    }
  in
  duplex engine ~a_to_b:c ~b_to_a:c

(* User-space RPC that bypasses the hypervisor (vCUDA/rCUDA-style). *)
let user_rpc engine ~(virt : Ava_device.Timing.virt) =
  let c =
    {
      per_msg_ns = Time.ns 500;
      bytes_per_s = virt.Ava_device.Timing.rpc_bytes_per_s;
      deliver_ns = virt.Ava_device.Timing.rpc_latency_ns;
    }
  in
  duplex engine ~a_to_b:c ~b_to_a:c

(* Network transport to a disaggregated API server (LegoOS-style).
   Each message pays a send syscall + segmentation, which is what makes
   API batching worthwhile on this transport. *)
let network engine ~(virt : Ava_device.Timing.virt) =
  let c =
    {
      per_msg_ns = Time.us 4;
      bytes_per_s = virt.Ava_device.Timing.net_bytes_per_s;
      deliver_ns = virt.Ava_device.Timing.net_latency_ns;
    }
  in
  duplex engine ~a_to_b:c ~b_to_a:c

type kind = Direct | Shm_ring | User_rpc | Network

let kind_to_string = function
  | Direct -> "direct"
  | Shm_ring -> "shm-ring"
  | User_rpc -> "user-rpc"
  | Network -> "network"

let make kind engine ~virt =
  match kind with
  | Direct -> direct engine
  | Shm_ring -> shm_ring engine ~virt
  | User_rpc -> user_rpc engine ~virt
  | Network -> network engine ~virt
