(* The AvA-generated guest library for MVNC (Movidius NCSDK). *)

module Stub = Ava_remoting.Stub
module Wire = Ava_remoting.Wire
module Message = Ava_remoting.Message

open Ava_simnc.Types
open Codec

type t = { stub : Stub.t }

let status_error code = status_of_code code

let finish stub result parse =
  match result with
  | Error _ -> Error General_error
  | Ok None -> assert false
  | Ok (Some (reply : Message.reply)) -> (
      match Stub.take_deferred_error stub with
      | Some (_fn, code) -> Error (status_error code)
      | None ->
          if reply.Message.reply_status <> 0 then
            Error (status_error reply.Message.reply_status)
          else parse reply)

let fire stub ~fn ~env ~args ok =
  match Stub.invoke stub ~fn ~env ~args with
  | Error _ -> Error General_error
  | Ok None -> Ok ok
  | Ok (Some (reply : Message.reply)) ->
      if reply.Message.reply_status <> 0 then
        Error (status_error reply.Message.reply_status)
      else Ok ok

let sync stub ~fn ~env ~args parse =
  finish stub (Stub.invoke ~force_sync:true stub ~fn ~env ~args) parse

let out_exn (reply : Message.reply) n =
  match List.nth_opt reply.Message.reply_outs n with
  | Some v -> v
  | None -> raise Bad_args

let create stub =
  let t = { stub } in
  let module M = struct
    let mvncGetDeviceName ~index =
      sync t.stub ~fn:"mvncGetDeviceName"
        ~env:[ ("index", index); ("name_size", 64) ]
        ~args:[ i index; u; i 64 ]
        (fun reply -> Ok (Bytes.to_string (to_b (out_exn reply 0))))

    let mvncOpenDevice ~name =
      sync t.stub ~fn:"mvncOpenDevice"
        ~env:[ ("name_size", String.length name) ]
        ~args:[ b (Bytes.of_string name); i (String.length name); u ]
        (fun reply ->
          match reply.Message.reply_ret with
          | Wire.Handle _ as v -> (
              match Wire.to_int v with
              | Some n -> Ok n
              | None -> Error General_error)
          | _ -> Error General_error)

    let mvncCloseDevice d =
      sync t.stub ~fn:"mvncCloseDevice" ~env:[] ~args:[ h d ] (fun _ -> Ok ())

    let mvncAllocateGraph d ~graph_data =
      sync t.stub ~fn:"mvncAllocateGraph"
        ~env:[ ("graph_data_size", Bytes.length graph_data) ]
        ~args:[ h d; u; b (Bytes.copy graph_data); i (Bytes.length graph_data) ]
        (fun reply ->
          match reply.Message.reply_ret with
          | Wire.Handle _ as v -> (
              match Wire.to_int v with
              | Some n -> Ok n
              | None -> Error General_error)
          | _ -> Error General_error)

    let mvncDeallocateGraph g =
      sync t.stub ~fn:"mvncDeallocateGraph" ~env:[] ~args:[ h g ] (fun _ ->
          Ok ())

    (* The NCSDK's own pipelining call: forwarded asynchronously. *)
    let mvncLoadTensor g ~tensor =
      fire t.stub ~fn:"mvncLoadTensor"
        ~env:[ ("tensor_size", Bytes.length tensor) ]
        ~args:[ h g; b (Bytes.copy tensor); i (Bytes.length tensor) ]
        ()

    let mvncGetResult g =
      sync t.stub ~fn:"mvncGetResult"
        ~env:[ ("result_size", 1 lsl 20) ]
        ~args:[ h g; u; i (1 lsl 20) ]
        (fun reply -> Ok (to_b (out_exn reply 0)))

    let mvncGetGraphOption g opt =
      sync t.stub ~fn:"mvncGetGraphOption"
        ~env:[ ("option", graph_option_to_int opt) ]
        ~args:[ h g; i (graph_option_to_int opt); u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))

    let mvncSetGraphOption g opt v =
      sync t.stub ~fn:"mvncSetGraphOption"
        ~env:[ ("option", graph_option_to_int opt); ("value", v) ]
        ~args:[ h g; i (graph_option_to_int opt); i v ]
        (fun _ -> Ok ())

    let mvncGetDeviceOption d opt =
      sync t.stub ~fn:"mvncGetDeviceOption"
        ~env:[ ("option", device_option_to_int opt) ]
        ~args:[ h d; i (device_option_to_int opt); u ]
        (fun reply -> Ok (to_i (out_exn reply 0)))
  end in
  ((module M : Ava_simnc.Api.S), t)

let stub t = t.stub
