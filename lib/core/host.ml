(* Stack assembly: deploy every virtualization technique of §2 over the
   same silos, plus the full AvA remoting stack of §3-4.

   A {!cl_host} owns the physical GPU, the hypervisor, the router and the
   API server; [add_vm] attaches one guest and returns a SimCL module the
   guest application uses exactly like the vendor library.  {!nc_host} is
   the Movidius equivalent. *)

module Transport = Ava_transport.Transport
module Faults = Ava_transport.Faults
module Plan = Ava_codegen.Plan
module Stub = Ava_remoting.Stub
module Server = Ava_remoting.Server
module Router = Ava_remoting.Router
module Migrate = Ava_remoting.Migrate
module Swap = Ava_remoting.Swap
module Obs = Ava_obs.Obs
module Pool = Ava_pool.Pool

open Ava_sim
open Ava_device

(* Host-side TDR (timeout-detection-and-recovery) policy: a dispatched
   call whose handler overruns its spec resource estimate by more than
   [tp_factor] (floored at [tp_min_ns]) is declared wedged; the server
   resets the device and fails the call with [status_device_lost].  The
   floor must exceed the longest legitimate single kernel (Inception's
   8 ms layer), or healthy workloads would trip it. *)
type tdr_policy = {
  tp_factor : float;
  tp_min_ns : Ava_sim.Time.t;
  tp_poison : bool;  (** scribble surviving device memory on reset *)
}

let default_tdr = { tp_factor = 20.0; tp_min_ns = Time.ms 50; tp_poison = false }

(* The attachment techniques of the design space (§2). *)
type technique =
  | Passthrough  (** dedicated device, native driver in the guest *)
  | Full_virt  (** trap-based MMIO interposition *)
  | Ava of Transport.kind  (** AvA remoting through the router *)
  | User_rpc  (** API remoting that bypasses the hypervisor (vCUDA-style) *)

let technique_to_string = function
  | Passthrough -> "pass-through"
  | Full_virt -> "full-virtualization"
  | Ava k -> "ava/" ^ Transport.kind_to_string k
  | User_rpc -> "user-rpc"

(* --- SimCL hosts --------------------------------------------------------- *)

type cl_host = {
  engine : Engine.t;
  gpu : Gpu.t;  (** device 0 in a pooled host *)
  hv : Ava_hv.Hypervisor.t;
  plan : Plan.t;
  spec : Ava_spec.Ast.api_spec;
  router : Router.t;
  server : Cl_handlers.state Server.t;  (** device 0's server when pooled *)
  kd : Ava_simcl.Kdriver.t;  (** host kernel driver used by the server *)
  kds : Ava_simcl.Kdriver.t array;
      (** per-device kernel drivers ([[| kd |]] on a classic host) —
          the cluster tier's cross-host transfer needs them *)
  swap : Swap.t option;
  recorders : (int, Migrate.t) Hashtbl.t;
  trace : Ava_sim.Trace.t;
  obs : Obs.t option;
  pool : Cl_handlers.state Pool.t option;
      (** the device pool; [None] on a classic single-device host *)
  sva : bool;  (** zero-copy data path: per-VM IOMMUs + mapped refs *)
  doorbell : Transport.doorbell_cfg option;
      (** doorbell coalescing on each guest's shm-ring send side *)
  iommus : (int, Iommu.t) Hashtbl.t;  (** per-VM IOMMU when [sva] *)
}

type cl_guest = {
  g_vm : Ava_hv.Vm.t;
  g_api : (module Ava_simcl.Api.S);
  g_stub : Stub.t option;  (** None for pass-through / full-virt guests *)
  g_technique : technique;
}

(* Strip every async annotation: the unoptimized specification of the
   §5 ablation (every call waits for its reply). *)
let sync_everything (spec : Ava_spec.Ast.api_spec) =
  {
    spec with
    Ava_spec.Ast.fns =
      List.map
        (fun f -> { f with Ava_spec.Ast.f_sync = Ava_spec.Ast.Sync })
        spec.Ava_spec.Ast.fns;
  }

let load_cl_plan ?(sync_only = false) () =
  let spec = Ava_spec.Specs.load_simcl () in
  let spec = if sync_only then sync_everything spec else spec in
  match Plan.compile spec with
  | Ok plan -> (spec, plan)
  | Error e -> failwith ("simcl plan compilation failed: " ^ e)

(* Record successfully executed calls per the spec's record classes.
   One hook closure per server, so [Server.Ctx.last_fresh] reads the
   right per-server context in a pooled host. *)
let install_recorder_hook server ~plan ~recorders =
  Server.set_call_hook server (fun ~vm_id ~status c ->
      if status = 0 then
        match
          (Hashtbl.find_opt recorders vm_id, Plan.find plan c.Ava_remoting.Message.call_fn)
        with
        | Some recorder, Some call_plan ->
            let allocated =
              match call_plan.Plan.cp_record with
              | Ava_spec.Ast.Object_alloc ->
                  Option.map
                    (fun ctx -> Server.Ctx.last_fresh ctx)
                    (Server.vm_ctx server ~vm_id)
              | _ -> None
            in
            Migrate.observe ?allocated recorder call_plan c
        | _ -> ())

(* Live clCreateBuffer allocations still in a record log, with sizes
   recovered from the recorded arguments.  (Private copy of
   [Migration.live_buffers]; that module sits above this one in the
   dependency order.) *)
let pool_live_buffers recorder =
  List.filter_map
    (fun (r : Migrate.recorded) ->
      if String.equal r.Migrate.rc_fn "clCreateBuffer" then
        match (r.Migrate.rc_primary, r.Migrate.rc_args) with
        | Some vid, [ _ctx; _flags; Ava_remoting.Wire.I64 size; _err ] ->
            Some (vid, Int64.to_int size)
        | _ -> None
      else None)
    (Migrate.replay_log recorder)

(* The cross-server silo copy: snapshot live buffers off the source
   device, replay the record log into the (freshly attached) destination
   silo re-binding each object to its original virtual id, then restore
   buffer contents — the same procedure as [Migration.migrate], but
   across two servers instead of one server's state swap.  Generic over
   *which* host each server belongs to: the pool uses it between two
   devices of one host, the cluster tier between devices of two hosts.
   [iommu]/[dst_dma] re-point SVA at the destination device;
   [suspend_recording]/[resume_recording] bracket the replay (which must
   not re-record itself — the hooks consult the caller's recorder
   tables).  Must run inside a simulation process. *)
let cl_silo_transfer ~recorder ~(src_srv : Cl_handlers.state Server.t)
    ~src_kd ~(dst_srv : Cl_handlers.state Server.t) ~dst_kd ~iommu ~dst_dma
    ~suspend_recording ~resume_recording ~vm_id =
  let require = function
    | Some x -> x
    | None -> invalid_arg "Host.cl_silo_transfer: vm not attached"
  in
  let src_ctx = require (Server.vm_ctx src_srv ~vm_id) in
  let src_state = require (Server.vm_state src_srv ~vm_id) in
  let dst_ctx = require (Server.vm_ctx dst_srv ~vm_id) in
  let dst_state = require (Server.vm_state dst_srv ~vm_id) in
  (* The destination context is fresh, so its id counter would re-mint
     ids the replay is about to re-bind originals onto; reserve the
     source's whole range first. *)
  Server.Ctx.reserve dst_ctx (Server.Ctx.next_vid src_ctx);
  (* The content store belongs to the source front-end; the guest's
     stale refs heal through the cache-miss NAK/resend path. *)
  Server.flush_cache src_srv ~vm_id;
  (* SVA: the guest's pinned regions survive (its memory didn't move),
     but the source device's cached translations must die and resolution
     must re-point at the destination device — one batched shootdown,
     then every region refaults on first access from the new device. *)
  (match iommu with
  | Some iommu ->
      Iommu.quiesce iommu;
      Server.clear_sva src_srv ~vm_id;
      Server.set_sva dst_srv ~vm_id ~iommu ~dma:dst_dma
  | None -> ());
  (* The drain window paused the worker, but a kernel the source device
     already accepted is still running and writes its outputs only at
     completion — snapshot now and the destination inherits pre-kernel
     bytes (a clean tenant then reads back wrong results after a
     mid-workload rebalance).  Wait for the silo's queues first. *)
  Ava_simcl.Native.quiesce src_state.Cl_handlers.native;
  let bytes_moved = ref 0 in
  let snapshot =
    List.filter_map
      (fun (vid, size) ->
        match Server.Ctx.resolve src_ctx vid with
        | None -> None
        | Some host_mem -> (
            match
              Ava_simcl.Native.find_mem src_state.Cl_handlers.native host_mem
            with
            | None -> None
            | Some buf ->
                let data =
                  Ava_simcl.Kdriver.read_buffer src_kd ~buf ~offset:0
                    ~len:size
                in
                bytes_moved := !bytes_moved + size;
                Some (vid, data)))
      (pool_live_buffers recorder)
  in
  (* Replay with recording suspended so it doesn't re-record itself. *)
  suspend_recording ();
  List.iter
    (fun (r : Migrate.recorded) ->
      let call =
        {
          Ava_remoting.Message.call_seq = 0;
          call_vm = vm_id;
          call_fn = r.Migrate.rc_fn;
          call_args = r.Migrate.rc_args;
        }
      in
      ignore (Server.execute_direct dst_srv ~vm_id call);
      match (r.Migrate.rc_class, r.Migrate.rc_primary) with
      | Ava_spec.Ast.Object_alloc, Some orig_vid -> (
          let fresh_vid = Server.Ctx.last_fresh dst_ctx in
          if fresh_vid <> orig_vid then
            match Server.Ctx.resolve dst_ctx fresh_vid with
            | Some host_h ->
                Server.Ctx.forget dst_ctx fresh_vid;
                Server.Ctx.bind dst_ctx ~guest:orig_vid ~host:host_h
            | None -> ())
      | _ -> ())
    (Migrate.replay_log recorder);
  resume_recording ();
  List.iter
    (fun (vid, data) ->
      match Server.Ctx.resolve dst_ctx vid with
      | None -> ()
      | Some host_mem -> (
          match
            Ava_simcl.Native.find_mem dst_state.Cl_handlers.native host_mem
          with
          | None -> ()
          | Some buf ->
              Ava_simcl.Kdriver.write_buffer dst_kd ~buf ~offset:0 ~src:data;
              bytes_moved := !bytes_moved + Bytes.length data))
    snapshot;
  !bytes_moved

(* The pool's transfer closure: both servers belong to one host, so the
   recorder table is shared and recording is suspended by pulling the
   entry for the replay window. *)
let pool_transfer ~recorders ~(servers : Cl_handlers.state Server.t array)
    ~(kds : Ava_simcl.Kdriver.t array) ~iommus ~(gpus : Gpu.t array) ~vm_id
    ~src ~dst =
  let recorder =
    match Hashtbl.find_opt recorders vm_id with
    | Some r -> r
    | None -> invalid_arg "Host.pool_transfer: unknown vm"
  in
  cl_silo_transfer ~recorder ~src_srv:servers.(src) ~src_kd:kds.(src)
    ~dst_srv:servers.(dst) ~dst_kd:kds.(dst)
    ~iommu:(Hashtbl.find_opt iommus vm_id)
    ~dst_dma:(Gpu.dma gpus.(dst))
    ~suspend_recording:(fun () -> Hashtbl.remove recorders vm_id)
    ~resume_recording:(fun () -> Hashtbl.replace recorders vm_id recorder)
    ~vm_id

(* [swap_capacity] enables swapping with the given device-memory budget
   in bytes; [swap_page_granularity] switches the data movement from one
   transfer per buffer object to one per 4 KiB page (the page/chunk-based
   schemes of [32,33,55] the paper argues against).  [sync_only] deploys
   the unoptimized (no-async-forwarding) spec for the §5 ablation.
   [transfer_cache] bounds the server's per-VM content store in bytes and
   arms the matching stub-side digest cache on every remoted guest; the
   default 0 disables the cache entirely (wire traffic byte-identical to
   the pre-cache stack).  [obs] arms per-call latency attribution across
   stub, router and server; the registry is passive (no virtual-time
   charges), so an armed run is bit-identical in timing to a disarmed
   one.

   [devices], [placement] and [rebalance] stand up the device pool:
   [devices] simulated GPUs (each fronted by its own API server and
   router dispatch lane), placement of remoted VMs onto them, and the
   optional periodic skew monitor.  With [devices:1] and no placement
   or rebalance the pool is not built at all and the stack is the
   classic single-device host, bit-identical to the pre-pool code.
   Swapping composes with single-device hosts only. *)
let create_cl_host ?(virt = Timing.default_virt) ?(gpu_timing = Timing.gtx1080)
    ?swap_capacity ?(swap_page_granularity = false) ?(sync_only = false)
    ?(transfer_cache = 0) ?(sva = false) ?doorbell ?(tracing = false)
    ?devfaults ?tdr ?obs ?(devices = 1) ?placement ?rebalance ?vm_id_base
    engine =
  if devices < 1 then invalid_arg "create_cl_host: devices must be >= 1";
  let pooled = devices > 1 || placement <> None || rebalance <> None in
  let trace = Ava_sim.Trace.create ~enabled:tracing () in
  if not pooled then begin
    let gpu = Gpu.create ~timing:gpu_timing ?devfault:devfaults engine in
    let hv = Ava_hv.Hypervisor.create ~virt ?vm_id_base engine in
    let spec, plan = load_cl_plan ~sync_only () in
    let kd = Ava_simcl.Kdriver.create gpu in
    (* Server-side watchdog: on overrun, reset the one physical GPU all
       VM silos share.  Wedged work is failed; queued survivors keep
       draining (Windows-TDR semantics), so innocents see only a blip. *)
    let server_tdr =
      Option.map
        (fun tp ->
          let policy = if tp.tp_poison then `Poison else `Preserve in
          {
            Server.tdr_factor = tp.tp_factor;
            tdr_min_ns = tp.tp_min_ns;
            tdr_reset = (fun ~vm_id:_ -> Gpu.reset ~policy gpu);
            tdr_wedged_by = Some (fun () -> Gpu.wedged_by gpu);
          })
        tdr
    in
    let swap =
      Option.map
        (fun capacity ->
          let dma_move ~key:_ ~bytes =
            if swap_page_granularity then begin
              (* One descriptor + transfer per page: the per-operation
                 setup cost is paid (size / 4K) times. *)
              let pages = (bytes + 4095) / 4096 in
              for _ = 1 to pages do
                Dma.transfer (Gpu.dma gpu) ~bytes:4096
              done
            end
            else Dma.transfer (Gpu.dma gpu) ~bytes
          in
          Swap.create ~capacity ~evict:dma_move ~restore:dma_move)
        swap_capacity
    in
    let server =
      Server.create ~trace ~cache_capacity:transfer_cache ?tdr:server_tdr ?obs
        engine ~plan ~make_state:(Cl_handlers.make_state ?swap kd)
    in
    Cl_handlers.register server;
    let router = Router.create ~trace ?obs engine ~virt ~plan in
    let recorders = Hashtbl.create 8 in
    install_recorder_hook server ~plan ~recorders;
    { engine; gpu; hv; plan; spec; router; server; kd; kds = [| kd |]; swap;
      recorders; trace; obs; pool = None; sva; doorbell;
      iommus = Hashtbl.create 8 }
  end
  else begin
    if swap_capacity <> None then
      invalid_arg "create_cl_host: swapping requires a single-device host";
    let placement = Option.value placement ~default:Pool.Round_robin in
    (* One GPU + kernel driver + API server per pool device; each
       server's TDR watchdog resets (and blames through) its own
       board. *)
    let gpus =
      Array.init devices (fun _ ->
          Gpu.create ~timing:gpu_timing ?devfault:devfaults engine)
    in
    let hv = Ava_hv.Hypervisor.create ~virt ?vm_id_base engine in
    let spec, plan = load_cl_plan ~sync_only () in
    let kds = Array.map Ava_simcl.Kdriver.create gpus in
    let recorders = Hashtbl.create 8 in
    let servers =
      Array.init devices (fun i ->
          let gpu = gpus.(i) in
          let server_tdr =
            Option.map
              (fun tp ->
                let policy = if tp.tp_poison then `Poison else `Preserve in
                {
                  Server.tdr_factor = tp.tp_factor;
                  tdr_min_ns = tp.tp_min_ns;
                  tdr_reset = (fun ~vm_id:_ -> Gpu.reset ~policy gpu);
                  tdr_wedged_by = Some (fun () -> Gpu.wedged_by gpu);
                })
              tdr
          in
          let server =
            Server.create ~trace ~cache_capacity:transfer_cache
              ?tdr:server_tdr ?obs ~device_id:i engine ~plan
              ~make_state:(Cl_handlers.make_state kds.(i))
          in
          Cl_handlers.register server;
          install_recorder_hook server ~plan ~recorders;
          server)
    in
    let router = Router.create ~trace ?obs engine ~virt ~plan in
    let iommus = Hashtbl.create 8 in
    let pool =
      Pool.create ~trace engine ~router ~placement
        ~transfer:(pool_transfer ~recorders ~servers ~kds ~iommus ~gpus)
        (Array.to_list
           (Array.init devices (fun i -> (gpus.(i), servers.(i)))))
    in
    Option.iter (fun config -> Pool.start_rebalancer ~config pool) rebalance;
    { engine; gpu = gpus.(0); hv; plan; spec; router; server = servers.(0);
      kd = kds.(0); kds; swap = None; recorders; trace; obs;
      pool = Some pool; sva; doorbell; iommus }
  end

(* Attach one guest VM with the chosen technique and policies.
   [batching] enables rCUDA-style API batching in the guest stub.
   [faults] installs fault hooks on the guest-facing link (the hop that
   crosses a real transport); [retry] arms the stub's retransmission
   watchdog — deploy them together for a recoverable lossy stack. *)
(* Reply statuses that count against a SimCL VM's error budget: the
   server's device-lost verdict (TDR fired mid-call) and the CL-level
   CL_DEVICE_NOT_AVAILABLE a later clFinish reports for a kernel the
   reset killed. *)
let cl_fault_statuses =
  [
    Server.status_device_lost;
    Ava_simcl.Types.error_to_code Ava_simcl.Types.Device_not_available;
  ]

let add_cl_vm ?(technique = Ava Transport.Shm_ring) ?(batching = false)
    ?retry ?faults ?rate_per_s ?weight ?quota_cost ?quota_window ?breaker
    ?footprint ?device t ~name =
  let batch_limit = if batching then 16 else 1 in
  (* Arm the stub half of the transfer cache iff the server store is
     bounded above zero; the stub's max cacheable blob matches the store
     capacity so an oversized payload can never NAK forever. *)
  let cache =
    match Server.cache_capacity t.server with
    | 0 -> None
    | capacity -> Some (Stub.cache_for_capacity capacity)
  in
  let vm = Ava_hv.Hypervisor.create_vm t.hv ~name in
  let vm_id = Ava_hv.Vm.id vm in
  Hashtbl.replace t.recorders vm_id (Migrate.create ());
  (* SVA: one IOMMU (device address space) per remoted guest.  The stub
     pins through it; whichever server currently fronts the VM's device
     resolves through it. *)
  let iommu =
    if t.sva then begin
      let i = Iommu.create t.engine in
      Hashtbl.replace t.iommus vm_id i;
      Some i
    end
    else None
  in
  (* Dedicated-device techniques pin a pool device ([device], default
     0); on a classic host there is only the one GPU. *)
  let pinned_gpu () =
    match t.pool with
    | Some pool -> Pool.gpu pool (Option.value device ~default:0)
    | None -> t.gpu
  in
  match technique with
  | Passthrough ->
      let kd = Ava_hv.Hypervisor.attach_passthrough t.hv ~vm (pinned_gpu ()) in
      let api, _ = Ava_simcl.Native.create kd in
      { g_vm = vm; g_api = api; g_stub = None; g_technique = technique }
  | Full_virt ->
      let kd = Ava_hv.Hypervisor.attach_fullvirt t.hv ~vm (pinned_gpu ()) in
      let api, _ = Ava_simcl.Native.create kd in
      { g_vm = vm; g_api = api; g_stub = None; g_technique = technique }
  | User_rpc ->
      (* Guest connects straight to the API server: no router, no
         hypervisor interposition — and, pooled, no placement: the
         stack it bypasses is exactly the one that steers. *)
      let guest_end, server_end =
        Transport.user_rpc t.engine ~virt:(Ava_hv.Hypervisor.virt t.hv)
      in
      (match faults with
      | Some f -> Faults.wrap f (guest_end, server_end)
      | None -> ());
      ignore (Server.attach_vm t.server ~vm_id ~ep:server_end);
      Option.iter
        (fun i ->
          Server.set_sva t.server ~vm_id ~iommu:i ~dma:(Gpu.dma t.gpu))
        iommu;
      let stub =
        Stub.create ~batch_limit ?retry ?cache ?sva:iommu ?obs:t.obs t.engine
          ~vm_id ~plan:t.plan ~ep:guest_end
      in
      let api, remote = Cl_remote.create stub in
      ignore remote;
      { g_vm = vm; g_api = api; g_stub = Some stub; g_technique = technique }
  | Ava kind ->
      let virt = Ava_hv.Hypervisor.virt t.hv in
      (* Pooled: the placement policy (or an explicit [device] pin)
         picks the backend; its server executes this VM's calls. *)
      let backend, server =
        match t.pool with
        | Some pool ->
            let d = Pool.place ?footprint ?device pool ~vm in
            (d, Pool.server pool d)
        | None -> (0, t.server)
      in
      (* Hop 1: guest <-> router over the chosen transport.  Faults live
         here — the hop that crosses a ring/socket/network in a real
         deployment; the router <-> server queue is host-internal. *)
      let guest_end, router_guest_end = Transport.make kind t.engine ~virt in
      (match faults with
      | Some f -> Faults.wrap f (guest_end, router_guest_end)
      | None -> ());
      (* Doorbell coalescing lives on the guest's ring send side — the
         direction whose notify is a hypercall.  Other transports (and
         the host-internal router↔server queue) keep eager notifies. *)
      (match (t.doorbell, kind) with
      | Some cfg, Transport.Shm_ring -> Transport.set_doorbell ~cfg guest_end
      | _ -> ());
      (* Hop 2: router <-> server over a host-internal queue. *)
      let router_server_end, server_end = Transport.direct t.engine in
      ignore
        (Router.attach_vm ?rate_per_s ?weight:(Option.map Fun.id weight)
           ?quota_cost ?quota_window ?breaker
           ~breaker_statuses:cl_fault_statuses ~backend t.router vm
           ~guest_side:router_guest_end ~server_side:router_server_end);
      ignore (Server.attach_vm server ~vm_id ~ep:server_end);
      Option.iter
        (fun i ->
          let backend_gpu =
            match t.pool with
            | Some pool -> Pool.gpu pool backend
            | None -> t.gpu
          in
          Server.set_sva server ~vm_id ~iommu:i ~dma:(Gpu.dma backend_gpu))
        iommu;
      let stub =
        Stub.create ~batch_limit ?retry ?cache ?sva:iommu ?obs:t.obs t.engine
          ~vm_id ~plan:t.plan ~ep:guest_end
      in
      let api, remote = Cl_remote.create stub in
      ignore remote;
      { g_vm = vm; g_api = api; g_stub = Some stub; g_technique = technique }

(* A bare-metal SimCL stack: the native baseline every relative number in
   the evaluation is normalized to. *)
let native_cl ?(gpu_timing = Timing.gtx1080) engine =
  let gpu = Gpu.create ~timing:gpu_timing engine in
  let kd = Ava_simcl.Kdriver.create gpu in
  let api, _ = Ava_simcl.Native.create kd in
  (api, gpu)

let recorder t ~vm_id = Hashtbl.find_opt t.recorders vm_id

(* Retire a guest from the whole stack: pool residency (or the classic
   server entry), circuit breaker, IOMMU pins, record log.  Idempotent
   — retiring an unknown or already-retired VM returns [false] — and
   validated: a VM mid-migration is refused (retry after the migration
   completes).  The caller must ensure the VM has no in-flight calls;
   its worker dies with its inbox.  Must run inside a simulation
   process (the IOMMU teardown charges a shootdown). *)
let retire_cl_vm t ~vm_id =
  let ok =
    match t.pool with
    | Some pool when Option.is_some (Pool.device_of pool ~vm_id) ->
        Pool.retire_vm pool ~vm_id
    | _ -> (
        (* Classic host — or a pooled host's User_rpc guest, which
           bypasses placement and lives on device 0's server. *)
        match Server.vm_ctx t.server ~vm_id with
        | Some _ ->
            Server.detach_vm t.server ~vm_id;
            (* User_rpc guests have no router flow to clear. *)
            (try Router.clear_breaker t.router ~vm_id
             with Invalid_argument _ -> ());
            true
        | None -> false)
  in
  if ok then begin
    (match Hashtbl.find_opt t.iommus vm_id with
    | Some iommu ->
        Iommu.release_all iommu;
        Hashtbl.remove t.iommus vm_id
    | None -> ());
    Hashtbl.remove t.recorders vm_id
  end;
  ok

(* --- MVNC hosts ----------------------------------------------------------- *)

type nc_host = {
  nc_engine : Engine.t;
  nc_dev : Ncs.t;
  nc_hv : Ava_hv.Hypervisor.t;
  nc_plan : Plan.t;
  nc_router : Router.t;
  nc_server : Nc_handlers.state Server.t;
  nc_obs : Obs.t option;
  nc_sva : bool;
  nc_doorbell : Transport.doorbell_cfg option;
  nc_dma : Dma.t option;
      (* standalone DMA model for SVA scatter-gather charges: Ncs moves
         data over USB and exposes no Dma.t of its own *)
  nc_iommus : (int, Iommu.t) Hashtbl.t;
}

type nc_guest = {
  ng_vm : Ava_hv.Vm.t;
  ng_api : (module Ava_simnc.Api.S);
  ng_stub : Stub.t option;
}

let load_nc_plan () =
  let spec = Ava_spec.Specs.load_mvnc () in
  match Plan.compile spec with
  | Ok plan -> (spec, plan)
  | Error e -> failwith ("mvnc plan compilation failed: " ^ e)

let create_nc_host ?(virt = Timing.default_virt)
    ?(ncs_timing = Timing.movidius) ?(transfer_cache = 0) ?(sva = false)
    ?doorbell ?devfaults ?tdr ?obs engine =
  let dev = Ncs.create ~timing:ncs_timing ?devfault:devfaults engine in
  let hv = Ava_hv.Hypervisor.create ~virt engine in
  let _spec, plan = load_nc_plan () in
  (* NCS recovery = re-enumerate the stick: loaded graphs are gone, the
     guest re-allocates through the normal API path. *)
  let server_tdr =
    Option.map
      (fun tp ->
        {
          Server.tdr_factor = tp.tp_factor;
          tdr_min_ns = tp.tp_min_ns;
          tdr_reset = (fun ~vm_id:_ -> Ncs.reset dev);
          (* Single-owner USB device: no cross-VM wedge to blame. *)
          tdr_wedged_by = None;
        })
      tdr
  in
  let server =
    Server.create ~cache_capacity:transfer_cache ?tdr:server_tdr ?obs engine
      ~plan ~make_state:(Nc_handlers.make_state dev)
  in
  Nc_handlers.register server;
  let router = Router.create ?obs engine ~virt ~plan in
  {
    nc_engine = engine;
    nc_dev = dev;
    nc_hv = hv;
    nc_plan = plan;
    nc_router = router;
    nc_server = server;
    nc_obs = obs;
    nc_sva = sva;
    nc_doorbell = doorbell;
    (* SVA resolution never streams through this engine (stream:false),
       so only the descriptor-setup cost matters; GPU PCIe numbers are a
       fine stand-in for the host-side DMA block. *)
    nc_dma = (if sva then Some (Dma.of_gpu_timing Timing.gtx1080) else None);
    nc_iommus = Hashtbl.create 8;
  }

(* NCS fault budget: server device-lost plus the MVNC-level GONE status
   an unplugged/reset stick reports. *)
let nc_fault_statuses =
  [
    Server.status_device_lost;
    Ava_simnc.Types.status_to_code Ava_simnc.Types.Gone;
  ]

let add_nc_vm ?(transport = Transport.Shm_ring) ?rate_per_s ?weight ?breaker t
    ~name =
  let vm = Ava_hv.Hypervisor.create_vm t.nc_hv ~name in
  let vm_id = Ava_hv.Vm.id vm in
  let virt = Ava_hv.Hypervisor.virt t.nc_hv in
  let guest_end, router_guest_end = Transport.make transport t.nc_engine ~virt in
  (match (t.nc_doorbell, transport) with
  | Some cfg, Transport.Shm_ring -> Transport.set_doorbell ~cfg guest_end
  | _ -> ());
  let router_server_end, server_end = Transport.direct t.nc_engine in
  ignore
    (Router.attach_vm ?rate_per_s ?weight ?breaker
       ~breaker_statuses:nc_fault_statuses t.nc_router vm
       ~guest_side:router_guest_end ~server_side:router_server_end);
  ignore (Server.attach_vm t.nc_server ~vm_id ~ep:server_end);
  let iommu =
    match (t.nc_sva, t.nc_dma) with
    | true, Some dma ->
        let i = Iommu.create t.nc_engine in
        Hashtbl.replace t.nc_iommus vm_id i;
        Server.set_sva t.nc_server ~vm_id ~iommu:i ~dma;
        Some i
    | _ -> None
  in
  let cache =
    match Server.cache_capacity t.nc_server with
    | 0 -> None
    | capacity -> Some (Stub.cache_for_capacity capacity)
  in
  let stub =
    Stub.create ?cache ?sva:iommu ?obs:t.nc_obs t.nc_engine ~vm_id
      ~plan:t.nc_plan ~ep:guest_end
  in
  let api, remote = Nc_remote.create stub in
  ignore remote;
  { ng_vm = vm; ng_api = api; ng_stub = Some stub }

let native_nc ?(ncs_timing = Timing.movidius) engine =
  let dev = Ncs.create ~timing:ncs_timing engine in
  let api, _ = Ava_simnc.Native.create dev in
  (api, dev)

(* --- SimQA hosts ----------------------------------------------------------- *)

type qa_host = {
  qa_engine : Engine.t;
  qa_dev : Ava_simqa.Device.t;
  qa_hv : Ava_hv.Hypervisor.t;
  qa_plan : Plan.t;
  qa_router : Router.t;
  qa_server : Qa_handlers.state Server.t;
  qa_obs : Obs.t option;
}

type qa_guest = {
  qg_vm : Ava_hv.Vm.t;
  qg_api : (module Ava_simqa.Api.S);
  qg_stub : Stub.t option;
}

let load_qa_plan () =
  let spec = Ava_spec.Specs.load_qat () in
  match Plan.compile spec with
  | Ok plan -> (spec, plan)
  | Error e -> failwith ("qat plan compilation failed: " ^ e)

let create_qa_host ?(virt = Timing.default_virt)
    ?(qat_timing = Ava_simqa.Device.dh895xcc) ?obs engine =
  let dev = Ava_simqa.Device.create ~timing:qat_timing engine in
  let hv = Ava_hv.Hypervisor.create ~virt engine in
  let _spec, plan = load_qa_plan () in
  let server =
    Server.create ?obs engine ~plan ~make_state:(Qa_handlers.make_state dev)
  in
  Qa_handlers.register server;
  let router = Router.create ?obs engine ~virt ~plan in
  {
    qa_engine = engine;
    qa_dev = dev;
    qa_hv = hv;
    qa_plan = plan;
    qa_router = router;
    qa_server = server;
    qa_obs = obs;
  }

let add_qa_vm ?(transport = Transport.Shm_ring) ?rate_per_s ?weight t ~name =
  let vm = Ava_hv.Hypervisor.create_vm t.qa_hv ~name in
  let vm_id = Ava_hv.Vm.id vm in
  let virt = Ava_hv.Hypervisor.virt t.qa_hv in
  let guest_end, router_guest_end = Transport.make transport t.qa_engine ~virt in
  let router_server_end, server_end = Transport.direct t.qa_engine in
  ignore
    (Router.attach_vm ?rate_per_s ?weight t.qa_router vm
       ~guest_side:router_guest_end ~server_side:router_server_end);
  ignore (Server.attach_vm t.qa_server ~vm_id ~ep:server_end);
  let stub =
    Stub.create ?obs:t.qa_obs t.qa_engine ~vm_id ~plan:t.qa_plan ~ep:guest_end
  in
  let api, remote = Qa_remote.create stub in
  ignore remote;
  { qg_vm = vm; qg_api = api; qg_stub = Some stub }

let native_qa ?(qat_timing = Ava_simqa.Device.dh895xcc) engine =
  let dev = Ava_simqa.Device.create ~timing:qat_timing engine in
  let api, _ = Ava_simqa.Native.create dev in
  (api, dev)

(* --- SimST hosts ----------------------------------------------------------- *)

type st_host = {
  st_engine : Engine.t;
  st_hv : Ava_hv.Hypervisor.t;
  st_plan : Plan.t;
  st_spec : Ava_spec.Ast.api_spec;
  st_router : Router.t;
  st_server : St_handlers.state Server.t;  (** device 0's server when pooled *)
  st_devs : Ava_simst.Device.t array;  (** per pool device; [[| dev |]] classic *)
  st_recorders : (int, Migrate.t) Hashtbl.t;
  st_trace : Ava_sim.Trace.t;
  st_obs : Obs.t option;
  st_pool : St_handlers.state Pool.t option;
}

type st_guest = {
  sg_vm : Ava_hv.Vm.t;
  sg_api : (module Ava_simst.Api.S);
  sg_stub : Stub.t option;
}

let load_st_plan () =
  let spec = Ava_spec.Specs.load_simst () in
  match Plan.compile spec with
  | Ok plan -> (spec, plan)
  | Error e -> failwith ("simst plan compilation failed: " ^ e)

(* Heterogeneous fleets: the capability tag picks the device model.  The
   SimST API runs on all three — what differs is the timing profile, so
   capability-aware placement is measurable, not cosmetic. *)
let st_timing_of ~stream_timing = function
  | Pool.Cap_stream -> stream_timing
  | Pool.Cap_gpu -> Ava_simst.Device.gpu_class
  | Pool.Cap_npu -> Ava_simst.Device.npu_class

let st_phys cap dev =
  {
    Pool.ph_cap = cap;
    ph_busy_ns = (fun () -> Ava_simst.Device.busy_ns dev);
    ph_kernels = (fun () -> Ava_simst.Device.kernels_executed dev);
    ph_capacity = Ava_simst.Device.capacity dev;
    ph_wedged_by = (fun () -> Ava_simst.Device.wedged_by dev);
    ph_kill = (fun () -> Ava_simst.Device.kill dev);
    ph_gpu = None;
  }

(* Live stMemAlloc allocations still in a record log, sizes recovered
   from the recorded arguments (layout: [out placeholder; size]). *)
let st_live_mems recorder =
  List.filter_map
    (fun (r : Migrate.recorded) ->
      if String.equal r.Migrate.rc_fn "stMemAlloc" then
        match (r.Migrate.rc_primary, r.Migrate.rc_args) with
        | Some vid, [ _out; Ava_remoting.Wire.I64 size ] ->
            Some (vid, Int64.to_int size)
        | _ -> None
      else None)
    (Migrate.replay_log recorder)

(* The cross-server SimST silo copy, the stream-silo analogue of
   [cl_silo_transfer]: quiesce every stream (an enqueue the source
   already accepted writes its outputs only at completion), snapshot
   live device memory, replay the record log into the destination
   re-binding originals, restore contents.  Only object lifetimes are
   recorded — enqueue-shaped calls are [no_record]; after the quiesce
   all streams are idle and all events complete, which is exactly the
   state freshly replayed objects have. *)
let st_silo_transfer ~recorder ~(src_srv : St_handlers.state Server.t)
    ~(dst_srv : St_handlers.state Server.t) ~suspend_recording
    ~resume_recording ~vm_id =
  let require = function
    | Some x -> x
    | None -> invalid_arg "Host.st_silo_transfer: vm not attached"
  in
  let src_ctx = require (Server.vm_ctx src_srv ~vm_id) in
  let src_state = require (Server.vm_state src_srv ~vm_id) in
  let dst_ctx = require (Server.vm_ctx dst_srv ~vm_id) in
  let dst_state = require (Server.vm_state dst_srv ~vm_id) in
  Server.Ctx.reserve dst_ctx (Server.Ctx.next_vid src_ctx);
  Server.flush_cache src_srv ~vm_id;
  Ava_simst.Native.quiesce src_state.St_handlers.native;
  let bytes_moved = ref 0 in
  let snapshot =
    List.filter_map
      (fun (vid, size) ->
        match Server.Ctx.resolve src_ctx vid with
        | None -> None
        | Some host_mem -> (
            match
              Ava_simst.Native.find_mem src_state.St_handlers.native host_mem
            with
            | None -> None
            | Some buf ->
                bytes_moved := !bytes_moved + size;
                Some (vid, Bytes.copy buf)))
      (st_live_mems recorder)
  in
  suspend_recording ();
  List.iter
    (fun (r : Migrate.recorded) ->
      let call =
        {
          Ava_remoting.Message.call_seq = 0;
          call_vm = vm_id;
          call_fn = r.Migrate.rc_fn;
          call_args = r.Migrate.rc_args;
        }
      in
      ignore (Server.execute_direct dst_srv ~vm_id call);
      match (r.Migrate.rc_class, r.Migrate.rc_primary) with
      | Ava_spec.Ast.Object_alloc, Some orig_vid -> (
          let fresh_vid = Server.Ctx.last_fresh dst_ctx in
          if fresh_vid <> orig_vid then
            match Server.Ctx.resolve dst_ctx fresh_vid with
            | Some host_h ->
                Server.Ctx.forget dst_ctx fresh_vid;
                Server.Ctx.bind dst_ctx ~guest:orig_vid ~host:host_h
            | None -> ())
      | _ -> ())
    (Migrate.replay_log recorder);
  resume_recording ();
  List.iter
    (fun (vid, data) ->
      match Server.Ctx.resolve dst_ctx vid with
      | None -> ()
      | Some host_mem -> (
          match
            Ava_simst.Native.find_mem dst_state.St_handlers.native host_mem
          with
          | None -> ()
          | Some buf ->
              let len = min (Bytes.length data) (Bytes.length buf) in
              Bytes.blit data 0 buf 0 len;
              bytes_moved := !bytes_moved + len))
    snapshot;
  !bytes_moved

let st_pool_transfer ~recorders ~(servers : St_handlers.state Server.t array)
    ~vm_id ~src ~dst =
  let recorder =
    match Hashtbl.find_opt recorders vm_id with
    | Some r -> r
    | None -> invalid_arg "Host.st_pool_transfer: unknown vm"
  in
  st_silo_transfer ~recorder ~src_srv:servers.(src) ~dst_srv:servers.(dst)
    ~suspend_recording:(fun () -> Hashtbl.remove recorders vm_id)
    ~resume_recording:(fun () -> Hashtbl.replace recorders vm_id recorder)
    ~vm_id

(* [fleet] is the capability tag per pool device; a one-device
   [Cap_stream] fleet with no placement or rebalance builds the classic
   single-device host (no pool at all).  [st_timing] overrides the
   balanced preset for [Cap_stream] devices; GPU- and NPU-class devices
   keep their class presets — that contrast is the point of a mixed
   fleet. *)
let create_st_host ?(virt = Timing.default_virt)
    ?(st_timing = Ava_simst.Device.sm_stream) ?(tracing = false) ?obs
    ?(fleet = [ Pool.Cap_stream ]) ?placement ?rebalance ?vm_id_base engine =
  if fleet = [] then invalid_arg "create_st_host: fleet must be non-empty";
  let pooled =
    List.length fleet > 1 || placement <> None || rebalance <> None
  in
  let trace = Ava_sim.Trace.create ~enabled:tracing () in
  let hv = Ava_hv.Hypervisor.create ~virt ?vm_id_base engine in
  let spec, plan = load_st_plan () in
  let caps = Array.of_list fleet in
  let devs =
    Array.map
      (fun cap ->
        Ava_simst.Device.create ~timing:(st_timing_of ~stream_timing:st_timing cap)
          engine)
      caps
  in
  let recorders = Hashtbl.create 8 in
  let make_server i =
    let server =
      Server.create ~trace ?obs ~device_id:i engine ~plan
        ~make_state:(St_handlers.make_state devs.(i))
    in
    St_handlers.register server;
    install_recorder_hook server ~plan ~recorders;
    server
  in
  let router = Router.create ~trace ?obs engine ~virt ~plan in
  if not pooled then
    {
      st_engine = engine;
      st_hv = hv;
      st_plan = plan;
      st_spec = spec;
      st_router = router;
      st_server = make_server 0;
      st_devs = devs;
      st_recorders = recorders;
      st_trace = trace;
      st_obs = obs;
      st_pool = None;
    }
  else begin
    let servers = Array.init (Array.length devs) make_server in
    let pool =
      Pool.create_het ~trace engine ~router
        ~placement:(Option.value placement ~default:Pool.Round_robin)
        ~transfer:(st_pool_transfer ~recorders ~servers)
        (Array.to_list
           (Array.mapi (fun i cap -> (st_phys cap devs.(i), servers.(i))) caps))
    in
    Option.iter (fun config -> Pool.start_rebalancer ~config pool) rebalance;
    {
      st_engine = engine;
      st_hv = hv;
      st_plan = plan;
      st_spec = spec;
      st_router = router;
      st_server = servers.(0);
      st_devs = devs;
      st_recorders = recorders;
      st_trace = trace;
      st_obs = obs;
      st_pool = Some pool;
    }
  end

(* SimST fault budget: server device-lost plus the ST-level device-lost
   a killed accelerator reports. *)
let st_fault_statuses =
  [
    Server.status_device_lost;
    Ava_simst.Types.status_to_code Ava_simst.Types.St_device_lost;
  ]

(* [requires] declares the VM's capability requirement: placement only
   considers matching devices and migration refuses cross-capability
   destinations; portable VMs ([None]) go wherever the policy points. *)
let add_st_vm ?(transport = Transport.Shm_ring) ?rate_per_s ?weight ?breaker
    ?requires ?footprint ?device t ~name =
  let vm = Ava_hv.Hypervisor.create_vm t.st_hv ~name in
  let vm_id = Ava_hv.Vm.id vm in
  Hashtbl.replace t.st_recorders vm_id (Migrate.create ());
  let backend, server =
    match t.st_pool with
    | Some pool ->
        let d = Pool.place ?footprint ?requires ?device pool ~vm in
        (d, Pool.server pool d)
    | None -> (0, t.st_server)
  in
  let virt = Ava_hv.Hypervisor.virt t.st_hv in
  let guest_end, router_guest_end = Transport.make transport t.st_engine ~virt in
  let router_server_end, server_end = Transport.direct t.st_engine in
  ignore
    (Router.attach_vm ?rate_per_s ?weight ?breaker
       ~breaker_statuses:st_fault_statuses ~backend t.st_router vm
       ~guest_side:router_guest_end ~server_side:router_server_end);
  ignore (Server.attach_vm server ~vm_id ~ep:server_end);
  let stub =
    Stub.create ?obs:t.st_obs t.st_engine ~vm_id ~plan:t.st_plan ~ep:guest_end
  in
  let api, remote = St_remote.create stub in
  ignore remote;
  { sg_vm = vm; sg_api = api; sg_stub = Some stub }

(* Retire a SimST guest: pool residency (or the classic server entry),
   circuit breaker, record log.  Same contract as {!retire_cl_vm}. *)
let retire_st_vm t ~vm_id =
  let ok =
    match t.st_pool with
    | Some pool when Option.is_some (Pool.device_of pool ~vm_id) ->
        Pool.retire_vm pool ~vm_id
    | _ -> (
        match Server.vm_ctx t.st_server ~vm_id with
        | Some _ ->
            Server.detach_vm t.st_server ~vm_id;
            (try Router.clear_breaker t.st_router ~vm_id
             with Invalid_argument _ -> ());
            true
        | None -> false)
  in
  if ok then Hashtbl.remove t.st_recorders vm_id;
  ok

let native_st ?(st_timing = Ava_simst.Device.sm_stream) engine =
  let dev = Ava_simst.Device.create ~timing:st_timing engine in
  let api, _ = Ava_simst.Native.create dev in
  (api, dev)
