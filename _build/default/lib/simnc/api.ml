(* The MVNC public API (NCSDK v1 subset): the stable surface of the
   Movidius silo.  10 entry points, matching the functions the AvA
   prototype para-virtualized for the Intel NCS. *)

open Types

module type S = sig
  val mvncGetDeviceName : index:int -> string result
  val mvncOpenDevice : name:string -> device_handle result
  val mvncCloseDevice : device_handle -> unit result

  val mvncAllocateGraph : device_handle -> graph_data:bytes -> graph_handle result
  val mvncDeallocateGraph : graph_handle -> unit result

  val mvncLoadTensor : graph_handle -> tensor:bytes -> unit result
  (** Queue an input tensor; inference proceeds asynchronously. *)

  val mvncGetResult : graph_handle -> bytes result
  (** Block until the oldest queued inference completes; returns its
      output tensor. *)

  val mvncGetGraphOption : graph_handle -> graph_option -> int result
  val mvncSetGraphOption : graph_handle -> graph_option -> int -> unit result
  val mvncGetDeviceOption : device_handle -> device_option -> int result
end

let function_names =
  [
    "mvncGetDeviceName";
    "mvncOpenDevice";
    "mvncCloseDevice";
    "mvncAllocateGraph";
    "mvncDeallocateGraph";
    "mvncLoadTensor";
    "mvncGetResult";
    "mvncGetGraphOption";
    "mvncSetGraphOption";
    "mvncGetDeviceOption";
  ]
