(* Multi-tenant sharing: four guest VMs on one GPU, with the router
   enforcing WFQ weights and a rate limit — the consolidation story the
   paper opens with.

     dune exec examples/multi_tenant.exe *)

open Ava_sim
open Ava_core
open Ava_workloads

let () =
  let engine = Engine.create () in
  let host = Host.create_cl_host engine in
  (* Gold gets 8x the share of bronze; the noisy neighbor is also
     rate-limited to 5000 API calls/s. *)
  let tenants =
    [
      ("gold", Host.add_cl_vm host ~weight:8.0 ~name:"gold");
      ("silver", Host.add_cl_vm host ~weight:4.0 ~name:"silver");
      ("bronze", Host.add_cl_vm host ~weight:1.0 ~name:"bronze");
      ( "noisy",
        Host.add_cl_vm host ~weight:1.0 ~rate_per_s:5000.0 ~name:"noisy" );
    ]
  in
  let finish_times = Hashtbl.create 4 in
  List.iter
    (fun (name, guest) ->
      Engine.spawn engine (fun () ->
          let module CL = (val guest.Host.g_api) in
          let s = Clutil.open_session (module CL) in
          let kernels =
            Clutil.build_kernels s [ ("work", 2.0e9 /. 65536.0, 0.0) ]
          in
          let k = List.hd kernels in
          for _ = 1 to 40 do
            Clutil.launch s k ~global:65536 ~local:256
          done;
          Clutil.finish s;
          Hashtbl.replace finish_times name (Engine.now engine)))
    tenants;
  Engine.run engine;
  Fmt.pr "four tenants, equal demand (40 x ~225us kernels each):@.";
  List.iter
    (fun (name, guest) ->
      let vm = guest.Host.g_vm in
      Fmt.pr
        "  %-7s weight-ordered finish at %-10s (%d calls, %d bytes moved)@."
        name
        (Time.to_string (Hashtbl.find finish_times name))
        (Ava_hv.Vm.api_calls vm)
        (Ava_hv.Vm.bytes_transferred vm))
    tenants;
  Fmt.pr "@.%a" Ava_core.Report.pp
    (Ava_core.Report.snapshot host (List.map snd tenants))
