(** Wire values: the dynamic representation every forwarded API call is
    marshalled into.

    Handles are guest-visible integers (the API server maintains the
    id → host-object mapping), so values survive any transport and any
    server replacement during migration. *)

type value =
  | Unit
  | I64 of int64
  | F64 of float
  | Str of string
  | Blob of bytes
  | Handle of int64
  | List of value list
  | Blob_ref of { br_digest : int64; br_size : int }
      (** Content-addressed stand-in for a [Blob] whose payload the server
          has already acknowledged: 13 bytes on the wire regardless of
          payload size. *)
  | Blob_cached of { bc_digest : int64; bc_data : bytes }
      (** A [Blob] payload travelling together with its digest — announces
          the digest to the server's content store. *)
  | Mapped_ref of { mr_iova : int64; mr_size : int }
      (** SVA buffer reference: the payload stays in guest pages pinned
          into the device IOVA window ([Ava_device.Iommu]); only
          (iova, size) crosses the wire — 13 bytes regardless of payload
          size.  Decode rejects references outside the IOVA window. *)

val int : int -> value
(** Shorthand for [I64 (Int64.of_int n)]. *)

val to_int : value -> int option
(** Integer view of [I64] or [Handle] values. [None] when the payload does
    not fit the native [int] range (it is never silently wrapped). *)

val digest : bytes -> int64
(** FNV-1a 64 over the payload — the content address used by the transfer
    cache. Same hash construction as the [Faults] checksum envelope. *)

val equal : value -> value -> bool
val pp : Format.formatter -> value -> unit

val encoded_size : value -> int
(** Size of the encoded form, for payload accounting. *)

val encode : value list -> bytes

val decode : bytes -> (value list, string) result
(** Total: corrupt or truncated input yields [Error], never an
    exception. *)
