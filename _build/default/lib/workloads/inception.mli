(** Inception Net v3 on the Movidius NCS (Figure 5's rightmost bar).

    The layer schedule coarsely follows the published architecture:
    ~48 weighted layers, ~5.7 GFLOPs per 299x299x3 inference, a ~90 MB
    graph file, 1000-way output.  The NCSDK usage pattern is
    LoadTensor / GetResult pairs over one allocated graph. *)

exception Api_failure of string

val layer_flops : float list
val graph_bytes : int
val input_bytes : int
val output_bytes : int

val graph_data : unit -> bytes
(** The encoded graph file (see {!Ava_simnc.Graphdef}). *)

val run : ?inferences:int -> (module Ava_simnc.Api.S) -> unit
(** Open the stick, upload the graph, stream [inferences] (default 20)
    inferences, tear down. *)
