lib/simcl/builtin.ml: Bytes Char Int32 List Printf String
