(* First-fit device-memory allocator with free-block coalescing.

   Offsets are plain integers into the device's address space.  The
   allocator is deliberately simple: accelerator runtimes allocate large,
   long-lived buffers, so fragmentation behaviour matters less than
   correct accounting (which the swap and OOM experiments rely on). *)

type block = { offset : int; size : int }

type t = {
  capacity : int;
  mutable free : block list; (* sorted by offset, non-adjacent *)
  mutable used : int;
  mutable live_allocations : int;
  mutable peak_used : int;
  allocated : (int, int) Hashtbl.t; (* offset -> size *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Devmem.create: capacity must be > 0";
  {
    capacity;
    free = [ { offset = 0; size = capacity } ];
    used = 0;
    live_allocations = 0;
    peak_used = 0;
    allocated = Hashtbl.create 64;
  }

let capacity t = t.capacity
let used t = t.used
let available t = t.capacity - t.used
let live_allocations t = t.live_allocations
let peak_used t = t.peak_used

(* Round all allocations to 256-byte granules, like real GPU heaps. *)
let granule = 256
let round_up size = (size + granule - 1) / granule * granule

let alloc t size =
  if size <= 0 then invalid_arg "Devmem.alloc: size must be > 0";
  let size = round_up size in
  let rec take acc = function
    | [] -> None
    | b :: rest when b.size >= size ->
        let remainder =
          if b.size = size then []
          else [ { offset = b.offset + size; size = b.size - size } ]
        in
        t.free <- List.rev_append acc (remainder @ rest);
        Some b.offset
    | b :: rest -> take (b :: acc) rest
  in
  match take [] t.free with
  | None -> Error `Out_of_memory
  | Some offset ->
      t.used <- t.used + size;
      if t.used > t.peak_used then t.peak_used <- t.used;
      t.live_allocations <- t.live_allocations + 1;
      Hashtbl.replace t.allocated offset size;
      Ok offset

let free t offset =
  match Hashtbl.find_opt t.allocated offset with
  | None -> invalid_arg "Devmem.free: unknown offset"
  | Some size ->
      Hashtbl.remove t.allocated offset;
      t.used <- t.used - size;
      t.live_allocations <- t.live_allocations - 1;
      (* Insert sorted and coalesce with neighbours. *)
      let rec insert = function
        | [] -> [ { offset; size } ]
        | b :: rest when offset < b.offset ->
            if offset + size = b.offset then
              { offset; size = size + b.size } :: rest
            else { offset; size } :: b :: rest
        | b :: rest ->
            if b.offset + b.size = offset then
              (* Coalesce left, then possibly right. *)
              insert_merged { offset = b.offset; size = b.size + size } rest
            else b :: insert rest
      and insert_merged merged = function
        | b :: rest when merged.offset + merged.size = b.offset ->
            { merged with size = merged.size + b.size } :: rest
        | rest -> merged :: rest
      in
      t.free <- insert t.free

let size_of t offset = Hashtbl.find_opt t.allocated offset

(* Invariant checks used by property tests. *)
let check_invariants t =
  let rec disjoint_sorted = function
    | a :: (b :: _ as rest) ->
        a.offset + a.size <= b.offset
        && a.offset + a.size <> b.offset (* coalesced: never adjacent *)
        && disjoint_sorted rest
    | _ -> true
  in
  let free_total = List.fold_left (fun acc b -> acc + b.size) 0 t.free in
  let alloc_total = Hashtbl.fold (fun _ s acc -> acc + s) t.allocated 0 in
  disjoint_sorted t.free
  && free_total + alloc_total = t.capacity
  && alloc_total = t.used
