(* Native SimST stack over the simulated stream accelerator; one
   instance per host process, as with the other silos.

   Everything asynchronous is enqueued through {!Device.enqueue}, so the
   native stack and the remoted stack share the same ordering machinery
   — parity tests compare results and completion times directly. *)

open Ava_sim
open Types

let call_ns = Time.ns 250

type st = {
  engine : Engine.t;
  dev : Device.t;
  mutable next_handle : int;
  streams : (stream_handle, Device.stream) Hashtbl.t;
  events : (event_handle, Device.event) Hashtbl.t;
  mems : (mem_handle, int) Hashtbl.t;  (* api handle -> device mem id *)
  tickets : (int, (bytes, status) Stdlib.result Ivar.t) Hashtbl.t;
  mutable calls : int;
}

let enter st =
  st.calls <- st.calls + 1;
  Engine.delay call_ns

let fresh st =
  st.next_handle <- st.next_handle + 1;
  st.next_handle

(* Built-in kernels over int32 elements.  Reads happen at execution
   time, after any copies enqueued ahead of the launch. *)
let run_kernel ~name ~a ~b ~out ~n =
  for i = 0 to n - 1 do
    let x = Bytes.get_int32_le a (4 * i) in
    let v =
      match name with
      | "vadd" -> Int32.add x (Bytes.get_int32_le b (4 * i))
      | "scale" -> Int32.mul 2l x
      | _ -> assert false
    in
    Bytes.set_int32_le out (4 * i) v
  done

let kernel_known = function "vadd" | "scale" -> true | _ -> false

let create dev =
  let st =
    {
      engine = Device.engine_of dev;
      dev;
      next_handle = 900;
      streams = Hashtbl.create 8;
      events = Hashtbl.create 8;
      mems = Hashtbl.create 16;
      tickets = Hashtbl.create 8;
      calls = 0;
    }
  in
  let stream h = Hashtbl.find_opt st.streams h in
  let mem h =
    match Hashtbl.find_opt st.mems h with
    | None -> None
    | Some id -> Device.find_mem st.dev id
  in
  let guard f =
    if Device.killed st.dev then Error St_device_lost else f ()
  in
  let module M = struct
    let stDeviceGetCount () =
      enter st;
      guard (fun () -> Ok 1)

    let stStreamCreate () =
      enter st;
      guard (fun () ->
          let h = fresh st in
          Hashtbl.replace st.streams h (Device.stream_create st.dev);
          Ok h)

    let stStreamDestroy h =
      enter st;
      guard (fun () ->
          match stream h with
          | None -> Error St_invalid_value
          | Some s ->
              Device.stream_sync s;
              Device.stream_destroy st.dev s;
              Hashtbl.remove st.streams h;
              Ok ())

    let stStreamSynchronize h =
      enter st;
      guard (fun () ->
          match stream h with
          | None -> Error St_invalid_value
          | Some s ->
              Device.stream_sync s;
              Ok ())

    let stEventCreate () =
      enter st;
      guard (fun () ->
          let h = fresh st in
          Hashtbl.replace st.events h (Device.event_create ());
          Ok h)

    let stEventDestroy h =
      enter st;
      guard (fun () ->
          if Hashtbl.mem st.events h then begin
            Hashtbl.remove st.events h;
            Ok ()
          end
          else Error St_invalid_value)

    let stEventRecord eh sh =
      enter st;
      guard (fun () ->
          match (Hashtbl.find_opt st.events eh, stream sh) with
          | Some ev, Some s ->
              Device.event_record ev s;
              Ok ()
          | _ -> Error St_invalid_value)

    let stEventSynchronize eh =
      enter st;
      guard (fun () ->
          match Hashtbl.find_opt st.events eh with
          | None -> Error St_invalid_value
          | Some ev ->
              Device.event_sync ev;
              Ok ())

    let stStreamWaitEvent sh eh =
      enter st;
      guard (fun () ->
          match (stream sh, Hashtbl.find_opt st.events eh) with
          | Some s, Some ev ->
              Device.stream_wait_event st.dev s ev;
              Ok ()
          | _ -> Error St_invalid_value)

    let stMemAlloc ~size =
      enter st;
      guard (fun () ->
          match Device.alloc st.dev ~size with
          | Error `Invalid -> Error St_invalid_value
          | Error `Nomem -> Error St_out_of_memory
          | Ok id ->
              let h = fresh st in
              Hashtbl.replace st.mems h id;
              Ok h)

    let stMemFree h =
      enter st;
      guard (fun () ->
          match Hashtbl.find_opt st.mems h with
          | None -> Error St_invalid_value
          | Some id ->
              ignore (Device.free st.dev id);
              Hashtbl.remove st.mems h;
              Ok ())

    let stMemcpyHtoDAsync dst ~src sh =
      enter st;
      guard (fun () ->
          match (mem dst, stream sh) with
          | Some storage, Some s when Bytes.length src <= Bytes.length storage
            ->
              let src = Bytes.copy src in
              Device.enqueue st.dev s
                ~cost:(Device.copy_cost st.dev ~bytes:(Bytes.length src))
                (fun ~ok ->
                  if ok then
                    Bytes.blit src 0 storage 0 (Bytes.length src));
              Ok ()
          | _ -> Error St_invalid_value)

    let stMemcpyDtoH ~size h =
      enter st;
      guard (fun () ->
          match mem h with
          | Some storage when size >= 0 && size <= Bytes.length storage ->
              Device.quiesce st.dev;
              if Device.killed st.dev then Error St_device_lost
              else begin
                Device.sync_copy st.dev ~bytes:size;
                Ok (Bytes.sub storage 0 size)
              end
          | _ -> Error St_invalid_value)

    let stLaunchKernel sh ~name ~a ~b ~out ~n =
      enter st;
      guard (fun () ->
          match (stream sh, mem a, mem b, mem out) with
          | Some s, Some ba, Some bb, Some bout
            when kernel_known name && n >= 0 && 4 * n <= Bytes.length ba
                 && 4 * n <= Bytes.length bb
                 && 4 * n <= Bytes.length bout ->
              Device.enqueue ~kernels:1 st.dev s
                ~cost:
                  (Device.kernel_cost st.dev ~n ~flops_per_item:1
                     ~bytes_per_item:12) (fun ~ok ->
                  if ok then run_kernel ~name ~a:ba ~b:bb ~out:bout ~n);
              Ok ()
          | _ -> Error St_invalid_value)

    let stBatchSubmit sh ~batch ~item_size =
      enter st;
      guard (fun () ->
          let len = Bytes.length batch in
          if item_size <= 0 || len = 0 || len mod item_size <> 0 then
            Error St_invalid_value
          else
            let items = len / item_size in
            if items > (Device.timing st.dev).Device.queue_slots then
              Error St_queue_full
            else
              match stream sh with
              | None -> Error St_invalid_value
              | Some s ->
                  let batch = Bytes.copy batch in
                  let ticket = fresh st in
                  let result = Ivar.create () in
                  Hashtbl.replace st.tickets ticket result;
                  Device.enqueue ~kernels:items st.dev s
                    ~cost:(Device.batch_cost st.dev ~items ~bytes:len)
                    (fun ~ok ->
                      Ivar.fill result
                        (if ok then Ok (Device.batch_scores ~batch ~item_size)
                         else Error St_device_lost));
                  Ok ticket)

    let stBatchCollect sh ~ticket ~size =
      enter st;
      guard (fun () ->
          match (stream sh, Hashtbl.find_opt st.tickets ticket) with
          | Some _, Some result -> (
              match Ivar.read result with
              | Error _ as e ->
                  Hashtbl.remove st.tickets ticket;
                  e
              | Ok scores when Bytes.length scores <= size ->
                  Hashtbl.remove st.tickets ticket;
                  Ok scores
              | Ok _ -> Error St_invalid_value)
          | _ -> Error St_invalid_value)
  end in
  ((module M : Api.S), st)

let calls st = st.calls
let device st = st.dev
let live_streams st = Hashtbl.length st.streams
let live_mems st = Hashtbl.length st.mems

let find_mem st h =
  match Hashtbl.find_opt st.mems h with
  | None -> None
  | Some id -> Device.find_mem st.dev id

let quiesce st = Device.quiesce st.dev
