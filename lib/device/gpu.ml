(* The simulated GPU.

   Hardware state is a register file, a device-memory heap, a DMA engine
   and a command processor fed by a hardware ring.  Kernel execution time
   follows a roofline model: launch overhead plus
   max(flops / peak_flops, bytes / memory_bandwidth).

   Kernels may carry a semantic action (a host closure over buffer
   contents) so that tests and examples can check computational results
   end-to-end through every virtualization stack; pure timing workloads
   omit it. *)

open Ava_sim

let doorbell_addr = 0x10
let status_addr = 0x14

type buffer = {
  buf_id : int;
  offset : int;
  size : int;
  mutable data : Bytes.t;
}

type kernel_work = {
  kernel_name : string;
  work_items : int;
  flops_per_item : float;
  bytes_per_item : float;
  action : (unit -> unit) option;
}

type completion = {
  queued_at : Time.t;
  mutable started_at : Time.t;
  mutable finished_at : Time.t;
  client : int;
  mutable failed : bool;
  done_ : unit Ivar.t;
}

type t = {
  engine : Engine.t;
  timing : Timing.gpu;
  mmio : Mmio.t;
  dma : Dma.t;
  mem : Devmem.t;
  ring : (kernel_work * completion) Channel.t;
  buffers : (int, buffer) Hashtbl.t;
  fault : Devfault.t option;
  mutable wedged : (kernel_work * completion) option;
  mutable dead : bool;  (** board lost: every command fails instantly *)
  mutable cp_resume : (unit -> unit) option;
  mutable resets : int;
  mutable next_buf_id : int;
  mutable busy_ns : Time.t;
  mutable kernels_executed : int;
  mutable doorbells : int;
}

let kernel_duration (timing : Timing.gpu) work =
  let flops = float_of_int work.work_items *. work.flops_per_item in
  let bytes = float_of_int work.work_items *. work.bytes_per_item in
  let compute_s = flops /. timing.Timing.flops_per_s in
  let memory_s = bytes /. timing.Timing.mem_bytes_per_s in
  Time.add timing.Timing.kernel_launch_ns
    (Time.of_float_s (Float.max compute_s memory_s))

let create ?(timing = Timing.gtx1080) ?devfault engine =
  let t =
    {
      engine;
      timing;
      mmio = Mmio.create ();
      dma = Dma.of_gpu_timing timing;
      mem = Devmem.create timing.Timing.mem_capacity;
      ring = Channel.create ~capacity:1024 ();
      buffers = Hashtbl.create 64;
      fault = devfault;
      wedged = None;
      dead = false;
      cp_resume = None;
      resets = 0;
      next_buf_id = 1;
      busy_ns = 0;
      kernels_executed = 0;
      doorbells = 0;
    }
  in
  Mmio.on_write t.mmio ~addr:doorbell_addr (fun _ ->
      t.doorbells <- t.doorbells + 1);
  (* Command processor: drain the ring forever.  Faults intercept a
     launch before the roofline path: a hang parks the CP (until
     [reset] resumes it); a transient launch failure charges only the
     launch overhead and completes the command as failed. *)
  Engine.spawn engine ~name:"gpu-cp" (fun () ->
      let rec loop () =
        let work, completion = Channel.recv t.ring in
        (if t.dead then begin
           (* Lost board: commands fail instantly, no time charged. *)
           completion.started_at <- Engine.now engine;
           completion.failed <- true;
           completion.finished_at <- Engine.now engine;
           Ivar.fill completion.done_ ()
         end
         else
        match t.fault with
        | Some f when Devfault.gpu_hangs f ~client:completion.client ->
            completion.started_at <- Engine.now engine;
            t.wedged <- Some (work, completion);
            Engine.await (fun resume -> t.cp_resume <- Some resume)
        | Some f when Devfault.gpu_launch_fails f ~client:completion.client
          ->
            completion.started_at <- Engine.now engine;
            Engine.delay timing.Timing.kernel_launch_ns;
            completion.failed <- true;
            completion.finished_at <- Engine.now engine;
            Ivar.fill completion.done_ ()
        | _ ->
            completion.started_at <- Engine.now engine;
            let d = kernel_duration timing work in
            Engine.delay d;
            (match work.action with Some f -> f () | None -> ());
            t.busy_ns <- t.busy_ns + d;
            t.kernels_executed <- t.kernels_executed + 1;
            completion.finished_at <- Engine.now engine;
            Mmio.write t.mmio ~addr:status_addr
              (Int64.of_int t.kernels_executed);
            Ivar.fill completion.done_ ());
        loop ()
      in
      loop ());
  t

let engine t = t.engine
let timing t = t.timing
let mmio t = t.mmio
let dma t = t.dma
let mem t = t.mem
let busy_ns t = t.busy_ns
let kernels_executed t = t.kernels_executed
let doorbells t = t.doorbells
let resets t = t.resets
let wedged t = t.wedged <> None
let is_dead t = t.dead

(* Permanent device loss (board falls off the bus): the wedged command
   (if any) completes as failed, ring survivors and all future
   submissions fail instantly, and no reset revives the board.  Device
   memory stays readable so an evacuation can still snapshot buffers. *)
let kill t =
  if not t.dead then begin
    t.dead <- true;
    (match t.wedged with
    | Some (_work, completion) ->
        completion.failed <- true;
        completion.finished_at <- Engine.now t.engine;
        Ivar.fill completion.done_ ();
        t.wedged <- None
    | None -> ());
    match t.cp_resume with
    | Some resume ->
        t.cp_resume <- None;
        resume ()
    | None -> ()
  end

(* The client whose command wedged the CP (TDR blame). *)
let wedged_by t =
  Option.map (fun (_, (c : completion)) -> c.client) t.wedged

(* Buffer management (device-side objects backed by real bytes). *)

let create_buffer t ~size =
  match Devmem.alloc t.mem size with
  | Error `Out_of_memory -> Error `Out_of_memory
  | Ok offset ->
      let id = t.next_buf_id in
      t.next_buf_id <- id + 1;
      (* Zeroed: simulated device memory must read deterministically. *)
      let buf = { buf_id = id; offset; size; data = Bytes.make size '\000' } in
      Hashtbl.replace t.buffers id buf;
      Ok buf

let find_buffer t id = Hashtbl.find_opt t.buffers id

let destroy_buffer t id =
  match Hashtbl.find_opt t.buffers id with
  | None -> invalid_arg "Gpu.destroy_buffer: unknown buffer"
  | Some buf ->
      Devmem.free t.mem buf.offset;
      Hashtbl.remove t.buffers id

let live_buffers t = Hashtbl.length t.buffers

(* Submit a kernel to the hardware ring; the returned completion's
   [done_] ivar fills when execution finishes.  The caller (kernel
   driver) is responsible for doorbell MMIO and interrupt latency. *)
let submit ?(client = 0) t work =
  let completion =
    {
      queued_at = Engine.now t.engine;
      started_at = 0;
      finished_at = 0;
      client;
      failed = false;
      done_ = Ivar.create ();
    }
  in
  Channel.send t.ring (work, completion);
  completion

(* TDR-style device reset (Windows-TDR semantics): the wedged command is
   invalidated and completed as failed, ring survivors drain normally
   once the command processor resumes, and device memory is preserved or
   poisoned per policy.  Harmless when the CP is not wedged. *)
let reset ?(policy = `Preserve) t =
  t.resets <- t.resets + 1;
  (match t.wedged with
  | Some (_work, completion) ->
      completion.failed <- true;
      completion.finished_at <- Engine.now t.engine;
      Ivar.fill completion.done_ ();
      t.wedged <- None
  | None -> ());
  (match policy with
  | `Poison ->
      Hashtbl.iter
        (fun _ buf -> Bytes.fill buf.data 0 (Bytes.length buf.data) '\xA5')
        t.buffers
  | `Preserve -> ());
  match t.cp_resume with
  | Some resume ->
      t.cp_resume <- None;
      resume ()
  | None -> ()

(* Host <-> device data movement; blocks for the DMA duration.
   [per_page_ns] lets full virtualization charge shadow-paging costs. *)
(* ECC/DMA corruption: flip the high bit of one deterministic byte of
   the transferred range. *)
let flip_byte data pos =
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0x80))

let dma_corrupts t ~client ~len =
  len > 0
  &&
  match t.fault with
  | Some f -> Devfault.gpu_dma_corrupts f ~client
  | None -> false

let write_buffer ?(per_page_ns = 0) ?(client = 0) t ~buf ~offset ~src =
  let len = Bytes.length src in
  if offset < 0 || offset + len > buf.size then
    invalid_arg "Gpu.write_buffer: out of range";
  Dma.transfer ~per_page_ns t.dma ~bytes:len;
  Bytes.blit src 0 buf.data offset len;
  if dma_corrupts t ~client ~len then
    match t.fault with
    | Some f -> flip_byte buf.data (offset + Devfault.corrupt_pos f ~len)
    | None -> ()

let read_buffer ?(per_page_ns = 0) ?(client = 0) t ~buf ~offset ~len =
  if offset < 0 || offset + len > buf.size then
    invalid_arg "Gpu.read_buffer: out of range";
  Dma.transfer ~per_page_ns t.dma ~bytes:len;
  let out = Bytes.sub buf.data offset len in
  if dma_corrupts t ~client ~len then (
    match t.fault with
    | Some f -> flip_byte out (Devfault.corrupt_pos f ~len)
    | None -> ());
  out

let utilization t ~elapsed =
  if elapsed <= 0 then 0.0
  else Time.to_float_ns t.busy_ns /. Time.to_float_ns elapsed
