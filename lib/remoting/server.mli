(** The API server: a non-privileged host process executing forwarded
    calls against the vendor silo.

    One worker process — and one ['st] silo instance — per VM gives the
    process-level isolation of §4.1: handles from one guest cannot
    denote another guest's objects.

    Handles on the wire are virtual ids; the per-VM {!Ctx} maps them to
    host objects, which is also the hook migration uses to re-bind ids
    after replay on a new host. *)

open Ava_sim

module Plan = Ava_codegen.Plan
module Transport = Ava_transport.Transport

(** Per-VM handle context. *)
module Ctx : sig
  val first_virtual_id : int
  (** Ids below this denote well-known enumerable objects (platforms,
      devices) and pass through unmapped. *)

  type t

  val create : vm_id:int -> t
  val vm : t -> int

  val fresh : t -> int
  (** Allocate a server-assigned virtual id. *)

  val last_fresh : t -> int
  (** The most recently assigned virtual id (used by migration replay to
      re-bind objects to their original ids). *)

  val next_vid : t -> int
  (** The next virtual id {!fresh} would mint. *)

  val reserve : t -> int -> unit
  (** Advance the fresh-id counter to at least the given id.  A
      migration replaying into a fresh context must first reserve the
      source context's range ([reserve dst (next_vid src)]): replay
      mints a fresh id per re-created object before re-binding it to
      its original id, and an unreserved counter mints ids colliding
      with originals already re-bound — silently overwriting a binding
      a guest-held handle still depends on. *)

  val bind : t -> guest:int -> host:int -> unit
  val resolve : t -> int -> int option
  val reverse : t -> host:int -> int option
  val forget : t -> int -> unit
  val live : t -> int
  val guest_ids : t -> int list
  val clear : t -> unit
end

type 'st handler =
  Ctx.t -> 'st -> Wire.value list -> int * Wire.value * Wire.value list
(** A handler executes one API function against the per-VM context and
    silo state, returning (status, return-value, out-values). *)

type cache_stats = {
  cs_hits : int;  (** refs resolved from the store *)
  cs_misses : int;  (** refs that missed (each triggers a NAK digest) *)
  cs_insertions : int;
  cs_evictions : int;
  cs_resident_bytes : int;
  cs_saved_bytes : int;  (** payload bytes served from the store *)
  cs_rejected : int;  (** announces whose digest didn't verify *)
}
(** Counters of the per-VM content store (server half of the transfer
    cache). *)

type 'st vm_entry
type 'st t

(** {1 Remoting-level status codes} (disjoint from API error codes) *)

val status_ok : int
val status_unknown_function : int
val status_bad_arguments : int
val status_unknown_handle : int

val status_timeout : int
(** Synthesized by the guest stub when a call exhausts its retry budget
    (never sent by the server itself). *)

val status_device_lost : int
(** The device was lost under this call (hung kernel, TDR reset, USB
    unplug); the silo survives and later calls may succeed again. *)

val status_vm_quarantined : int
(** Synthesized by the router for calls rejected while their VM is
    quarantined by the circuit breaker (never sent by the server). *)

(** {1 Handler exception protocol}

    Handlers raise these to signal the corresponding reply statuses;
    any other exception escaping a handler is counted in
    {!unexpected_exns} (a server-side bug, not a guest error). *)

exception Unknown_handle
exception Bad_args
exception Device_lost

(** TDR watchdog configuration: a dispatched call whose handler has not
    returned after [tdr_factor] times its spec resource estimate
    (floored at [tdr_min_ns]) triggers [tdr_reset] and fails with
    {!status_device_lost}.  The reply enters the normal reply log, so
    retransmitted duplicates replay the same error.

    [tdr_wedged_by] (optional) names the client currently wedging the
    shared device, directing blame: a call stuck {e behind} another
    client's wedge triggers the reset but survives and completes
    normally once the device recovers; only the culprit's call fails.
    Without the query every timeout is blamed on its own call. *)
type tdr = {
  tdr_factor : float;
  tdr_min_ns : Time.t;
  tdr_reset : vm_id:int -> unit;
  tdr_wedged_by : (unit -> int option) option;
}

val create :
  ?exec_overhead_ns:Time.t ->
  ?cache_capacity:int ->
  ?tdr:tdr ->
  ?trace:Trace.t ->
  ?obs:Ava_obs.Obs.t ->
  ?device_id:int ->
  Engine.t ->
  plan:Plan.t ->
  make_state:(vm_id:int -> 'st) ->
  'st t
(** [make_state] builds one fresh silo instance per attached VM.
    [cache_capacity] bounds each VM's content store in payload bytes
    (default 0: transfer cache off, behaviour byte-identical to the
    pre-cache stack).  [tdr] arms the timeout-detection-and-recovery
    watchdog (default off; armed, watchdog resets are traced under
    ["tdr"]).  With [trace] (enabled), every executed call is recorded
    under the ["server"] category and cache-miss NAKs under ["cache"].
    [device_id] names the pool device this server fronts (default -1:
    unpooled); when set and [obs] is armed, executed calls stamp their
    span with the device for per-device attribution. *)

val register : 'st t -> string -> 'st handler -> unit

val set_call_hook : 'st t -> (vm_id:int -> status:int -> Message.call -> unit) -> unit
(** Observe every executed call (the migration recorder's hook). *)

val executed : 'st t -> int
val rejected : 'st t -> int

val replayed : 'st t -> int
(** Duplicate seqs answered from the per-VM reply log without
    re-executing (idempotent replay). *)

val restarts : 'st t -> int
val lost_while_down : 'st t -> int
(** Messages that arrived while their VM's worker was crashed. *)

val naks_sent : 'st t -> int
(** Cache-miss NAK messages sent to guests. *)

val tdr_resets : 'st t -> int
(** Device resets triggered by the TDR watchdog. *)

val device_lost : 'st t -> int
(** Calls failed with {!status_device_lost} (watchdog timeouts plus
    handlers raising {!Device_lost}). *)

val unexpected_exns : 'st t -> int
(** Handler exceptions outside the known protocol set — genuine bugs
    surfaced instead of masquerading as guest errors. *)

val cache_capacity : 'st t -> int
(** The per-VM content-store bound this server was created with. *)

val device_id : 'st t -> int
(** The pool device this server fronts; -1 when unpooled. *)

val cache_stats : 'st t -> vm_id:int -> cache_stats option
val cache_totals : 'st t -> cache_stats
(** Content-store counters for one VM / summed over all attached VMs. *)

val flush_cache : 'st t -> vm_id:int -> unit
(** Empty the VM's content store (used by migration; the guest's stale
    refs then miss and heal through the NAK/resend path).  A crashed
    server's {!restart} flushes implicitly: the store is front-end
    process memory. *)

(** {1 Shared virtual addressing}

    With SVA armed for a VM, [Wire.Mapped_ref] arguments in its calls
    resolve to the pinned guest pages through the VM's IOMMU before
    dispatch; one scatter-gather descriptor chain per call charges the
    descriptor setup and per-page IOTLB walk to the device's DMA engine
    (no bandwidth — the payload streams on the handler's ordinary DMA
    path).  A reference that fails translation consumes the call with
    {!status_bad_arguments} — never a NAK, which could not heal it. *)

val set_sva :
  'st t -> vm_id:int -> iommu:Ava_device.Iommu.t -> dma:Ava_device.Dma.t -> unit

val clear_sva : 'st t -> vm_id:int -> unit
val sva_for : 'st t -> vm_id:int -> (Ava_device.Iommu.t * Ava_device.Dma.t) option

val sva_resolutions : 'st t -> int
(** Calls in which at least one mapped-buffer ref resolved. *)

val sva_resolved_bytes : 'st t -> int
val sva_rejected : 'st t -> int
(** Calls consumed with {!status_bad_arguments} on a bad mapped ref. *)

val attach_vm : 'st t -> vm_id:int -> ep:Transport.endpoint -> 'st vm_entry
(** Spawn the VM's worker process draining [ep].  Per-VM calls execute
    strictly in seq order: a late (retransmitted) or early (reordered)
    seq parks until the gap before it fills — via retransmission or a
    router {!Message.Skip} notice — and seqs already executed replay
    their cached reply without touching the silo. *)

val detach_vm : 'st t -> vm_id:int -> unit
(** Drop the VM's entry and terminate its worker at the next wakeup.
    Migration away from a server must detach the source residency, or a
    later migration back would leave two workers racing for the same
    VM's inbox.  {!attach_vm} of an already-attached VM detaches the
    stale entry implicitly. *)

val crash : 'st t -> vm_id:int -> unit
(** Take the VM's worker down: every message that arrives until
    {!restart} is lost.  Silo state and the reply log survive; in-flight
    calls are recovered by stub retransmission and router requeue. *)

val restart : 'st t -> vm_id:int -> unit
val is_crashed : 'st t -> vm_id:int -> bool

val set_expected : 'st t -> vm_id:int -> seq:int -> unit
(** Fast-forward the VM's in-order cursor.  Migration replays log
    entries with seq 0 (outside the live window), so the destination
    entry must be told where the guest's live seq stream resumes or
    every steered call would park as a future seq. *)

val export_replies : 'st t -> vm_id:int -> (int * Message.reply) list
(** Snapshot the VM's reply log (seq-sorted), for carrying across a
    migration.  The destination's cursor starts past every seq the
    source executed, so a duplicate of such a seq can only be answered
    from this log — a reply lost on the guest link just before the
    move is otherwise unhealable at the destination. *)

val import_replies : 'st t -> vm_id:int -> (int * Message.reply) list -> unit
(** Merge an exported reply log into the VM's entry (existing seqs
    win). *)

val pause_vm : 'st t -> vm_id:int -> unit
(** Stall the worker before its next call (migration §4.3). *)

val resume_vm : 'st t -> vm_id:int -> unit

val vm_ctx : 'st t -> vm_id:int -> Ctx.t option
val vm_state : 'st t -> vm_id:int -> 'st option

val upcall : 'st t -> vm_id:int -> cb:int -> args:Wire.value list -> unit
(** Invoke a guest callback by sending an upcall message over the VM's
    endpoint.  Must run inside a process. *)

val execute_direct :
  'st t -> vm_id:int -> Message.call -> int * Wire.value * Wire.value list
(** Execute a call directly against a VM's state, bypassing transport —
    used by migration replay.  Must run inside a process. *)

val replace_state : 'st t -> vm_id:int -> 'st -> 'st
(** Swap in a fresh silo state for a VM (migration to a new device);
    returns the old state for snapshotting. *)
