lib/simnc/graphdef.mli:
